#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "ml/smote.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris::ml;

TEST(Dataset, AddAndAccess) {
  Dataset data;
  data.add({1.0, 2.0}, 1, 2.0);
  data.add({3.0, 4.0}, 0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.feature_count(), 2u);
  EXPECT_EQ(data.label(0), 1);
  EXPECT_DOUBLE_EQ(data.weight(0), 2.0);
  EXPECT_DOUBLE_EQ(data.weight(1), 1.0);
  EXPECT_EQ(data.positives(), 1u);
  EXPECT_EQ(data.negatives(), 1u);
  EXPECT_THROW(data.add({1.0}, 0), std::invalid_argument);
}

TEST(Dataset, ClassBalanceWeights) {
  Dataset data;
  for (int i = 0; i < 90; ++i) data.add({0.0}, 0);
  for (int i = 0; i < 10; ++i) data.add({1.0}, 1);
  data.apply_class_balance_weights();
  double w_pos = 0.0, w_neg = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == 1 ? w_pos : w_neg) += data.weight(i);
  }
  EXPECT_NEAR(w_pos, w_neg, 1e-9);
}

TEST(Dataset, BalanceWithSingleClassIsNoop) {
  Dataset data;
  data.add({0.0}, 1);
  data.add({1.0}, 1);
  data.apply_class_balance_weights();
  EXPECT_DOUBLE_EQ(data.weight(0), 1.0);
}

TEST(Dataset, SplitPartitionsAndIsDeterministic) {
  Dataset data;
  for (int i = 0; i < 100; ++i) data.add({static_cast<double>(i)}, i % 2);
  auto [train_a, test_a] = data.split(0.8, 42);
  auto [train_b, test_b] = data.split(0.8, 42);
  EXPECT_EQ(train_a.size(), 80u);
  EXPECT_EQ(test_a.size(), 20u);
  EXPECT_EQ(train_a.rows(), train_b.rows());
  // Union of features covers the full index set exactly once.
  std::vector<int> seen(100, 0);
  for (const auto& row : train_a.rows()) seen[static_cast<int>(row[0])]++;
  for (const auto& row : test_a.rows()) seen[static_cast<int>(row[0])]++;
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Dataset, AppendChecksWidth) {
  Dataset a, b;
  a.add({1.0, 2.0}, 1);
  b.add({1.0}, 0);
  EXPECT_THROW(a.append(b), std::invalid_argument);
  Dataset c;
  c.add({5.0, 6.0}, 0, 3.0);
  a.append(c);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.weight(1), 3.0);
}

TEST(Smote, BalancesMinorityClass) {
  polaris::util::Xoshiro256 rng(4);
  Dataset data;
  for (int i = 0; i < 200; ++i) data.add({rng.uniform(), rng.uniform()}, 0);
  for (int i = 0; i < 20; ++i) {
    data.add({rng.uniform(0.8, 1.0), rng.uniform(0.8, 1.0)}, 1);
  }
  const Dataset balanced = smote_oversample(data, {.seed = 1});
  EXPECT_NEAR(static_cast<double>(balanced.positives()),
              static_cast<double>(balanced.negatives()), 2.0);
  EXPECT_GT(balanced.size(), data.size());
}

TEST(Smote, SyntheticSamplesStayInMinorityRegion) {
  polaris::util::Xoshiro256 rng(5);
  Dataset data;
  for (int i = 0; i < 100; ++i) data.add({rng.uniform(0.0, 0.2)}, 0);
  for (int i = 0; i < 10; ++i) data.add({rng.uniform(0.8, 1.0)}, 1);
  const Dataset balanced = smote_oversample(data, {.seed = 2});
  for (std::size_t i = data.size(); i < balanced.size(); ++i) {
    EXPECT_EQ(balanced.label(i), 1);
    // Interpolations between minority points stay within their hull.
    EXPECT_GE(balanced.row(i)[0], 0.8);
    EXPECT_LE(balanced.row(i)[0], 1.0);
  }
}

TEST(Smote, DegenerateInputsUnchanged) {
  Dataset single;
  single.add({0.0}, 1);
  single.add({1.0}, 0);  // minority has 1 sample: cannot interpolate
  EXPECT_EQ(smote_oversample(single).size(), 2u);

  Dataset one_class;
  one_class.add({0.0}, 1);
  one_class.add({1.0}, 1);
  EXPECT_EQ(smote_oversample(one_class).size(), 2u);

  Dataset balanced_already;
  for (int i = 0; i < 10; ++i) balanced_already.add({0.1 * i}, i % 2);
  EXPECT_EQ(smote_oversample(balanced_already).size(), 10u);
}

TEST(Metrics, PerfectAndWorstAuc) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels_good{0, 0, 1, 1};
  const std::vector<int> labels_bad{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels_good), 1.0);
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels_bad), 0.0);
}

TEST(Metrics, AucWithTiesIsHalfCredit) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(Metrics, SingleClassAucIsHalf) {
  const std::vector<double> scores{0.1, 0.9};
  const std::vector<int> labels{1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(Metrics, HandComputedConfusion) {
  // Fake classifier: a constant probability per row via a stub model is
  // overkill; check the arithmetic through roc_auc + a tiny known case
  // using evaluate() with a trained stump would couple tests. Instead
  // verify precision/recall identities on a crafted score set.
  const std::vector<double> scores{0.9, 0.8, 0.4, 0.3, 0.7};
  const std::vector<int> labels{1, 0, 1, 0, 1};
  // thresh 0.5: predicted = {1,1,0,0,1}: tp=2 fp=1 fn=1 tn=1.
  int tp = 0, fp = 0, fn = 0, tn = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const int pred = scores[i] >= 0.5;
    if (pred && labels[i]) ++tp;
    else if (pred) ++fp;
    else if (labels[i]) ++fn;
    else ++tn;
  }
  EXPECT_EQ(tp, 2);
  EXPECT_EQ(fp, 1);
  EXPECT_EQ(fn, 1);
  EXPECT_EQ(tn, 1);
  EXPECT_NEAR(roc_auc(scores, labels), 4.0 / 6.0, 1e-12);
}

}  // namespace
