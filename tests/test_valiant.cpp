#include <gtest/gtest.h>

#include <cmath>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "sim/simulator.hpp"
#include "valiant/valiant.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

valiant::ValiantConfig fast_config() {
  valiant::ValiantConfig config;
  config.tvla.traces = 4096;
  config.tvla.noise_std_fj = 1.0;
  config.max_rounds = 4;
  return config;
}

TEST(Valiant, ReducesLeakageOnSbox) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  const auto result = valiant::run_valiant(nl, lib(), fast_config());
  EXPECT_GT(result.rounds, 0u);
  EXPECT_FALSE(result.masked_gates.empty());
  EXPECT_LT(result.after.total_abs_t(), result.before.total_abs_t());
  EXPECT_LT(result.after.leaky_count(), result.before.leaky_count());
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Valiant, MasksOnlyMaskableOriginalGates) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  const auto result = valiant::run_valiant(nl, lib(), fast_config());
  for (const auto g : result.masked_gates) {
    ASSERT_LT(g, nl.gate_count());
    EXPECT_TRUE(netlist::is_maskable(nl.gate(g).type));
  }
  // No duplicates.
  auto sorted = result.masked_gates;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Valiant, CleanDesignNeedsNoRounds) {
  // All inputs random-common: nothing is leaky, flow stops immediately.
  const auto nl = circuits::make_adder(8);
  auto config = fast_config();
  config.tvla.input_class.assign(nl.primary_inputs().size(),
                                 tvla::InputClass::kRandomCommon);
  const auto result = valiant::run_valiant(nl, lib(), config);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_TRUE(result.masked_gates.empty());
}

TEST(Valiant, BatchFractionSpreadsRounds) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  auto config = fast_config();
  config.batch_fraction = 0.25;
  config.max_rounds = 3;
  const auto result = valiant::run_valiant(nl, lib(), config);
  // Partial batches keep finding leaky gates -> uses the full round budget.
  EXPECT_EQ(result.rounds, 3u);
}

TEST(Valiant, RespectsRoundBudget) {
  const auto nl = circuits::make_aes_sbox_layer(2);
  auto config = fast_config();
  config.max_rounds = 1;
  const auto result = valiant::run_valiant(nl, lib(), config);
  EXPECT_LE(result.rounds, 1u);
}

TEST(Valiant, MaskedDesignStaysFunctional) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  const auto result = valiant::run_valiant(nl, lib(), fast_config());
  result.masked.validate();
  // Spot-check functional equivalence.
  sim::Simulator sim_orig(nl, 1), sim_masked(result.masked, 777);
  for (unsigned combo = 0; combo < 32; ++combo) {
    std::vector<bool> in(16);
    for (std::size_t b = 0; b < 16; ++b) in[b] = ((combo * 37 + b) & 3) == 0;
    EXPECT_EQ(sim_masked.eval_single(in), sim_orig.eval_single(in));
  }
}

}  // namespace
