// The global shard scheduler's determinism contract (see DESIGN.md):
// every campaign's result - down to the last bit of every Welch t - is
// independent of the scheduler's thread count, the queue interleaving,
// and the order campaigns were submitted in, and equals the pre-existing
// per-campaign TraceEngine path. Plus scheduler property tests: priority
// order, oversubscription, zero-batch campaigns, failure isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/memctrl.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "engine/scheduler.hpp"
#include "masking/masking.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

/// The campaign mix every multi-campaign test uses: unequal batch counts
/// (the scheduler's reason to exist), a sequential design, a masked
/// composite (kRand reseeding), and a tiny straggler.
struct CampaignCase {
  netlist::Netlist design;
  tvla::TvlaConfig config;
};

std::vector<CampaignCase> campaign_mix() {
  std::vector<CampaignCase> cases;
  {
    CampaignCase c{circuits::make_aes_sbox_layer(1), {}};
    c.config.traces = 4096;
    c.config.seed = 7;
    cases.push_back(std::move(c));
  }
  {
    CampaignCase c{circuits::make_adder(8), {}};
    c.config.traces = 1024;
    c.config.seed = 3;
    cases.push_back(std::move(c));
  }
  {
    CampaignCase c{circuits::make_memctrl(4, 4), {}};  // sequential (DFFs)
    c.config.traces = 2048;
    c.config.cycles_per_batch = 8;
    c.config.seed = 11;
    cases.push_back(std::move(c));
  }
  {
    const auto base = circuits::make_adder(8);
    std::vector<netlist::GateId> targets;
    for (netlist::GateId g = 0; g < base.gate_count(); ++g) {
      if (netlist::is_maskable(base.gate(g).type)) targets.push_back(g);
    }
    CampaignCase c{masking::apply_masking(base, targets).design, {}};
    c.config.traces = 1536;
    c.config.seed = 5;
    cases.push_back(std::move(c));
  }
  {
    CampaignCase c{circuits::make_adder(4), {}};  // straggler: 1 batch
    c.config.traces = 64;
    c.config.seed = 13;
    cases.push_back(std::move(c));
  }
  return cases;
}

void expect_reports_identical(const tvla::LeakageReport& a,
                              const tvla::LeakageReport& b) {
  ASSERT_EQ(a.t_values().size(), b.t_values().size());
  for (std::size_t g = 0; g < a.t_values().size(); ++g) {
    // Bit-identical, not just value-equal: a +0.0 that becomes -0.0 is a
    // real sign of float-op reordering, exactly what this harness exists
    // to catch (value comparison would let it through).
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.t_values()[g]),
              std::bit_cast<std::uint64_t>(b.t_values()[g]))
        << "group " << g << ": " << a.t_values()[g] << " vs "
        << b.t_values()[g];
  }
}

// --- bit-identity vs the per-campaign path -----------------------------------

TEST(Scheduler, MatchesPerCampaignPathAtEveryThreadCount) {
  const auto cases = campaign_mix();
  // The pre-existing per-campaign path (TraceEngine, serial) is the
  // reference the global queue must reproduce exactly.
  std::vector<tvla::LeakageReport> reference;
  for (const auto& c : cases) {
    auto config = c.config;
    config.threads = 1;
    reference.push_back(tvla::run_fixed_vs_random(c.design, lib(), config));
  }

  for (const std::size_t threads : {1u, 2u, 8u, 16u}) {
    engine::Scheduler scheduler(threads);
    std::vector<std::future<tvla::LeakageReport>> pending;
    for (const auto& c : cases) {
      pending.push_back(
          tvla::submit_fixed_vs_random(scheduler, c.design, lib(), c.config));
    }
    scheduler.drain();
    for (std::size_t i = 0; i < cases.size(); ++i) {
      ASSERT_TRUE(pending[i].valid());
      expect_reports_identical(reference[i], pending[i].get());
    }
  }
}

TEST(Scheduler, IndependentOfSubmissionOrder) {
  const auto cases = campaign_mix();
  std::vector<tvla::LeakageReport> reference;
  for (const auto& c : cases) {
    reference.push_back(tvla::run_fixed_vs_random(c.design, lib(), c.config));
  }

  // Several deterministic shuffles of the submission order, at a thread
  // count that forces interleaving. Futures map back by original index.
  std::vector<std::size_t> order(cases.size());
  std::iota(order.begin(), order.end(), 0);
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    engine::Scheduler scheduler(8);
    std::vector<std::future<tvla::LeakageReport>> pending(cases.size());
    for (const std::size_t i : order) {
      pending[i] =
          tvla::submit_fixed_vs_random(scheduler, cases[i].design, lib(),
                                       cases[i].config);
    }
    scheduler.drain();
    for (std::size_t i = 0; i < cases.size(); ++i) {
      expect_reports_identical(reference[i], pending[i].get());
    }
    std::next_permutation(order.begin(), order.end());
    std::rotate(order.begin(), order.begin() + 1, order.end());
  }
}

TEST(Scheduler, FixedVsFixedMatchesPerCampaignPath) {
  const auto design = circuits::make_adder(8);
  tvla::TvlaConfig config;
  config.traces = 2048;
  config.seed = 3;
  const auto reference = tvla::run_fixed_vs_fixed(design, lib(), config);
  engine::Scheduler scheduler(8);
  auto pending = tvla::submit_fixed_vs_fixed(scheduler, design, lib(), config);
  scheduler.drain();
  expect_reports_identical(reference, pending.get());
}

TEST(Scheduler, SingleCampaignDegenerateCase) {
  // One campaign in the queue == the per-campaign path, at any cap.
  const auto design = circuits::make_aes_sbox_layer(1);
  tvla::TvlaConfig config;
  config.traces = 2048;
  config.seed = 17;
  const auto reference = tvla::run_fixed_vs_random(design, lib(), config);
  for (const std::size_t threads : {1u, 16u}) {
    engine::Scheduler scheduler(threads);
    auto pending =
        tvla::submit_fixed_vs_random(scheduler, design, lib(), config);
    scheduler.drain();
    expect_reports_identical(reference, pending.get());
  }
}

TEST(Scheduler, OversubscriptionManyMoreCampaignsThanThreads) {
  // 24 campaigns, 2 threads: every queue state from saturated to empty.
  const auto design = circuits::make_adder(6);
  engine::Scheduler scheduler(2);
  std::vector<std::future<tvla::LeakageReport>> pending;
  std::vector<tvla::LeakageReport> reference;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    tvla::TvlaConfig config;
    config.traces = 128 + 64 * (seed % 5);  // unequal batch counts
    config.seed = seed;
    reference.push_back(tvla::run_fixed_vs_random(design, lib(), config));
    pending.push_back(
        tvla::submit_fixed_vs_random(scheduler, design, lib(), config));
  }
  scheduler.drain();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    expect_reports_identical(reference[i], pending[i].get());
  }
}

// --- core flows through the scheduler ----------------------------------------

TEST(Scheduler, AuditDesignsMatchesPerDesignAudits) {
  core::PolarisConfig config;
  config.tvla.traces = 512;
  config.tvla.noise_std_fj = 1.0;
  config.seed = 4;
  config.tvla.seed = 4;
  std::vector<circuits::Design> designs;
  designs.push_back(circuits::get_design("square", 0.4));
  designs.push_back(circuits::get_design("voter", 0.3));
  designs.push_back(circuits::get_design("multiplier", 0.3));

  const auto reports = core::audit_designs(designs, lib(), config);
  ASSERT_EQ(reports.size(), designs.size());
  for (std::size_t i = 0; i < designs.size(); ++i) {
    expect_reports_identical(
        tvla::run_fixed_vs_random(designs[i].netlist, lib(),
                                  core::tvla_config_for(config, designs[i])),
        reports[i]);
  }
}

TEST(Scheduler, TrainingDatasetIndependentOfThreadCount) {
  // Algorithm 1 through the global queue: the labelled dataset (sample
  // order included) must not depend on the scheduler fan-out.
  core::PolarisConfig config;
  config.mask_size = 25;
  config.locality = 3;
  config.iterations = 2;
  config.model_rounds = 10;
  config.tvla.traces = 256;
  config.tvla.noise_std_fj = 1.0;
  config.seed = 21;
  config.tvla.seed = 21;

  const auto training = circuits::training_suite();
  const std::span<const circuits::Design> designs(training.data(), 2);

  auto dataset_with_threads = [&](std::size_t threads) {
    auto cfg = config;
    cfg.threads = threads;
    core::Polaris polaris(cfg);
    (void)polaris.train(designs, lib());
    return polaris.training_data();
  };
  const auto serial = dataset_with_threads(1);
  const auto parallel = dataset_with_threads(8);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.feature_count(), parallel.feature_count());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.label(i), parallel.label(i)) << "sample " << i;
    for (std::size_t f = 0; f < serial.feature_count(); ++f) {
      EXPECT_EQ(serial.row(i)[f], parallel.row(i)[f])
          << "sample " << i << " feature " << f;
    }
  }
}

// --- scheduler property tests (synthetic campaigns) --------------------------

/// Synthetic state: xors a keyed function of every batch index, so any
/// missed, duplicated, or re-ordered *set* of batches changes the result,
/// while shard placement does not.
struct XorState {
  std::uint64_t value = 0;
};

std::uint64_t mix(std::uint64_t campaign, std::uint64_t batch) {
  return engine::stream_seed(campaign, batch, 0x70726f70ULL);
}

TEST(Scheduler, SyntheticCampaignsSeeEveryBatchExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u, 16u}) {
    engine::Scheduler scheduler(threads);
    std::vector<std::future<std::uint64_t>> pending;
    const std::size_t kCampaigns = 40;  // oversubscribes every cap above
    for (std::size_t c = 0; c < kCampaigns; ++c) {
      const std::size_t batches = 1 + (c * 7) % 97;
      pending.push_back(scheduler.submit<XorState>(
          batches, [](std::size_t) { return XorState{}; },
          [c](XorState& state, std::size_t batch) {
            state.value ^= mix(c, batch);
          },
          [](XorState& into, XorState&& from) { into.value ^= from.value; },
          [](XorState&& total) { return total.value; }));
    }
    EXPECT_GT(scheduler.pending_shards(), kCampaigns);  // shards, not jobs
    scheduler.drain();
    EXPECT_EQ(scheduler.pending_shards(), 0u);
    for (std::size_t c = 0; c < kCampaigns; ++c) {
      const std::size_t batches = 1 + (c * 7) % 97;
      std::uint64_t expected = 0;
      for (std::size_t b = 0; b < batches; ++b) expected ^= mix(c, b);
      EXPECT_EQ(pending[c].get(), expected) << "campaign " << c;
    }
  }
}

TEST(Scheduler, MergesInAscendingShardOrder) {
  // Order-sensitive merge (concatenation): the observed sequence must be
  // the batch order, whatever ran where.
  engine::Scheduler scheduler(8);
  auto pending = scheduler.submit<std::vector<std::uint64_t>>(
      200, [](std::size_t) { return std::vector<std::uint64_t>{}; },
      [](std::vector<std::uint64_t>& state, std::size_t batch) {
        state.push_back(batch);
      },
      [](std::vector<std::uint64_t>& into, std::vector<std::uint64_t>&& from) {
        into.insert(into.end(), from.begin(), from.end());
      },
      [](std::vector<std::uint64_t>&& total) { return total; });
  scheduler.drain();
  const auto sequence = pending.get();
  ASSERT_EQ(sequence.size(), 200u);
  for (std::size_t b = 0; b < sequence.size(); ++b) EXPECT_EQ(sequence[b], b);
}

TEST(Scheduler, ZeroBatchCampaignFinalizesImmediately) {
  engine::Scheduler scheduler(4);
  auto pending = scheduler.submit<XorState>(
      0, [](std::size_t) { return XorState{123}; },
      [](XorState&, std::size_t) { FAIL() << "no batches to run"; },
      [](XorState&, XorState&&) { FAIL() << "nothing to merge"; },
      [](XorState&& total) { return total.value; });
  // Ready before any drain - TraceEngine's make(0) semantics.
  EXPECT_EQ(scheduler.pending_shards(), 0u);
  EXPECT_EQ(pending.get(), 123u);
}

TEST(Scheduler, FailedCampaignDoesNotPoisonOthers) {
  engine::Scheduler scheduler(4);
  auto doomed = scheduler.submit<XorState>(
      64, [](std::size_t) { return XorState{}; },
      [](XorState&, std::size_t batch) {
        if (batch == 17) throw std::runtime_error("batch 17 exploded");
      },
      [](XorState& into, XorState&& from) { into.value ^= from.value; },
      [](XorState&& total) { return total.value; });
  auto healthy = scheduler.submit<XorState>(
      64, [](std::size_t) { return XorState{}; },
      [](XorState& state, std::size_t batch) { state.value += batch; },
      [](XorState& into, XorState&& from) { into.value += from.value; },
      [](XorState&& total) { return total.value; });
  scheduler.drain();
  EXPECT_THROW((void)doomed.get(), std::runtime_error);
  EXPECT_EQ(healthy.get(), 64u * 63u / 2u);
}

TEST(Scheduler, HeavierCampaignsDrainFirstWhenSerial) {
  // LPT priority: with threads = 1 the pop order is fully deterministic,
  // so the first batch executed must belong to the heaviest campaign.
  engine::Scheduler scheduler(1);
  std::vector<std::uint64_t> first_batch_owner;
  auto record = [&first_batch_owner](std::uint64_t campaign) {
    if (first_batch_owner.empty() || first_batch_owner.back() != campaign) {
      first_batch_owner.push_back(campaign);
    }
  };
  auto light = scheduler.submit<XorState>(
      4, [](std::size_t) { return XorState{}; },
      [&record](XorState&, std::size_t) { record(1); },
      [](XorState&, XorState&&) {}, [](XorState&&) { return 0; });
  auto heavy = scheduler.submit<XorState>(
      64, [](std::size_t) { return XorState{}; },
      [&record](XorState&, std::size_t) { record(2); },
      [](XorState&, XorState&&) {}, [](XorState&&) { return 0; });
  scheduler.drain();
  (void)light.get();
  (void)heavy.get();
  ASSERT_FALSE(first_batch_owner.empty());
  EXPECT_EQ(first_batch_owner.front(), 2u);  // heavy went first despite order
}

TEST(Scheduler, ProgressTableTracksCampaignsMonotonically) {
  // progress() is the live-status window the serve daemon exposes: rows in
  // submission order, shards_done monotonic, queue_position = LPT drain
  // rank, rows vanish exactly when campaigns finalize.
  engine::Scheduler scheduler(1);  // serial: deterministic claim order
  EXPECT_TRUE(scheduler.progress().empty());

  // Observed from INSIDE running batches (documented safe: run_shard holds
  // no scheduler lock): every alpha progress row seen mid-drain.
  std::vector<std::uint64_t> alpha_done;
  auto observe = [&scheduler, &alpha_done] {
    for (const auto& row : scheduler.progress()) {
      if (row.label == "alpha") {
        EXPECT_FALSE(row.stopped);
        EXPECT_EQ(row.shards_total, 12u);  // ShardPlan::make(24)
        EXPECT_LE(row.shards_done, row.shards_total);
        alpha_done.push_back(row.shards_done);
      }
    }
  };
  auto alpha = scheduler.submit<XorState>(
      24, [](std::size_t) { return XorState{}; },
      [&observe](XorState&, std::size_t) { observe(); },
      [](XorState&, XorState&&) {}, [](XorState&&) { return 0; },
      /*weight=*/24, "alpha");
  auto beta = scheduler.submit<XorState>(
      96, [](std::size_t) { return XorState{}; },
      [](XorState&, std::size_t) {}, [](XorState&, XorState&&) {},
      [](XorState&&) { return 0; }, /*weight=*/96, "beta");

  // Before the drain: both rows, submission order, nothing done, and LPT
  // ranks beta (heavier) ahead of alpha in the drain queue.
  const auto before = scheduler.progress();
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0].label, "alpha");
  EXPECT_EQ(before[1].label, "beta");
  EXPECT_EQ(before[0].shards_done, 0u);
  EXPECT_EQ(before[1].shards_done, 0u);
  EXPECT_EQ(before[0].shards_total, 12u);  // ShardPlan::make(24)
  EXPECT_EQ(before[1].shards_total, 24u);  // ShardPlan::make(96)
  EXPECT_EQ(before[1].queue_position, 0u);
  EXPECT_EQ(before[0].queue_position, 1u);
  EXPECT_EQ(before[0].sequence + 1, before[1].sequence);

  scheduler.drain();
  (void)alpha.get();
  (void)beta.get();

  // Every mid-drain observation: monotonic non-decreasing, never claiming
  // completion while a batch of the campaign was still running.
  ASSERT_FALSE(alpha_done.empty());
  EXPECT_TRUE(std::is_sorted(alpha_done.begin(), alpha_done.end()));
  EXPECT_LT(alpha_done.back(), 12u);
  // Finalized campaigns leave the table - a drained scheduler shows
  // nothing in flight.
  EXPECT_TRUE(scheduler.progress().empty());
}

}  // namespace
