#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ml/gbdt.hpp"
#include "util/rng.hpp"
#include "xai/kernelshap.hpp"
#include "xai/treeshap.hpp"

namespace {

using namespace polaris;

TEST(KernelShap, LinearModelRecoversCoefficients) {
  // f(x) = 2*x0 - 3*x1 + 1. With a zero-mean background, phi_i should be
  // beta_i * (x_i - mean_i) exactly (linear models have exact Shapley).
  const auto f = [](std::span<const double> x) {
    return 2.0 * x[0] - 3.0 * x[1] + 1.0;
  };
  std::vector<std::vector<double>> background;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 64; ++i) {
    background.push_back({rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  }
  double mean0 = 0.0, mean1 = 0.0;
  for (const auto& row : background) {
    mean0 += row[0];
    mean1 += row[1];
  }
  mean0 /= 64.0;
  mean1 /= 64.0;

  const std::vector<double> x{0.7, -0.4};
  const auto result = xai::kernel_shap(f, x, background, {.samples = 1000});
  EXPECT_NEAR(result.phi[0], 2.0 * (x[0] - mean0), 0.05);
  EXPECT_NEAR(result.phi[1], -3.0 * (x[1] - mean1), 0.05);
}

TEST(KernelShap, EfficiencyHoldsByConstruction) {
  const auto f = [](std::span<const double> x) {
    return x[0] * x[1] + 0.5 * x[2];
  };
  std::vector<std::vector<double>> background;
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 32; ++i) {
    background.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  const std::vector<double> x{0.9, 0.8, 0.1};
  const auto result = xai::kernel_shap(f, x, background, {.samples = 500});
  const double sum = std::accumulate(result.phi.begin(), result.phi.end(), 0.0);
  EXPECT_NEAR(sum, result.fx - result.expected_value, 1e-9);
}

TEST(KernelShap, AgreesWithTreeShapOnSmallModel) {
  // The two SHAP estimators must agree when the background equals the
  // training data (same value function, cover-vs-empirical caveat aside:
  // we use a balanced dataset so covers track the empirical distribution).
  util::Xoshiro256 rng(17);
  ml::Dataset data;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.chance(0.5) ? 1.0 : 0.0;
    const double b = rng.chance(0.5) ? 1.0 : 0.0;
    const double c = rng.chance(0.5) ? 1.0 : 0.0;
    const int label = (a == 1.0 && b == 1.0) ? 1 : 0;
    data.add({a, b, c}, label);
  }
  ml::Gbdt model({.rounds = 15, .max_depth = 2, .learning_rate = 0.3});
  model.fit(data);

  const auto f = [&](std::span<const double> x) {
    return model.predict_margin(x);
  };
  const std::vector<double> x{1.0, 1.0, 0.0};
  const auto exact = xai::tree_shap(model.ensemble(), x);
  const auto sampled =
      xai::kernel_shap(f, x, data.rows(), {.samples = 3000, .seed = 5});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(sampled.phi[i], exact[i], 0.12) << "feature " << i;
  }
}

TEST(KernelShap, InputValidation) {
  const auto f = [](std::span<const double>) { return 0.0; };
  const std::vector<double> one{1.0};
  const std::vector<std::vector<double>> empty_bg;
  const std::vector<std::vector<double>> bg{{0.0, 0.0}};
  EXPECT_THROW((void)xai::kernel_shap(f, one, bg), std::invalid_argument);
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)xai::kernel_shap(f, x, empty_bg), std::invalid_argument);
}

TEST(KernelShap, DeterministicForSeed) {
  const auto f = [](std::span<const double> x) { return x[0] + x[1] * x[2]; };
  std::vector<std::vector<double>> background{{0, 0, 0}, {1, 1, 1}, {0, 1, 0}};
  const std::vector<double> x{1.0, 0.5, 0.25};
  const auto a = xai::kernel_shap(f, x, background, {.samples = 200, .seed = 8});
  const auto b = xai::kernel_shap(f, x, background, {.samples = 200, .seed = 8});
  EXPECT_EQ(a.phi, b.phi);
}

}  // namespace
