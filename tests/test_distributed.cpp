// Distributed shard execution end to end: the moments/design/shard wire
// codecs must round-trip bit-exactly, and a WorkerPool audit over real TCP
// workers must produce reports bit-identical to the single-host scheduler
// path at ANY worker count - zero, one, many, a dead endpoint in the list,
// or a worker killed mid-campaign (its unacknowledged shards requeue onto
// the surviving lanes).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "netlist/netlist_io.hpp"
#include "server/client.hpp"
#include "server/net.hpp"
#include "server/protocol.hpp"
#include "server/remote.hpp"
#include "server/worker.hpp"
#include "techlib/techlib.hpp"
#include "tvla/moments_io.hpp"
#include "tvla/tvla.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

core::PolarisConfig audit_config() {
  core::PolarisConfig config;
  config.tvla.traces = 512;
  config.tvla.noise_std_fj = 1.0;
  config.seed = 7;
  config.tvla.seed = 7;
  return config;
}

std::vector<circuits::Design> suite_designs() {
  std::vector<circuits::Design> designs;
  designs.push_back(circuits::load_design("des3", 0.3));
  designs.push_back(circuits::load_design("square", 0.3));
  return designs;
}

void expect_reports_bit_identical(const tvla::LeakageReport& a,
                                  const tvla::LeakageReport& b) {
  ASSERT_EQ(a.t_values().size(), b.t_values().size());
  for (std::size_t g = 0; g < a.t_values().size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.t_values()[g]),
              std::bit_cast<std::uint64_t>(b.t_values()[g]))
        << "group " << g;
  }
  EXPECT_EQ(a.threshold(), b.threshold());
  EXPECT_EQ(a.traces_used(), b.traces_used());
  EXPECT_EQ(a.early_stopped(), b.early_stopped());
}

/// An in-process worker fleet on ephemeral loopback ports, plus the
/// comma-separated endpoint list a coordinator consumes.
struct Fleet {
  std::vector<std::unique_ptr<server::Worker>> workers;
  std::string endpoints;

  explicit Fleet(std::size_t count, std::size_t threads = 1) {
    for (std::size_t i = 0; i < count; ++i) {
      server::WorkerOptions options;
      options.listen = "tcp:127.0.0.1:0";
      options.threads = threads;
      auto worker = std::make_unique<server::Worker>(options);
      worker->start();
      if (!endpoints.empty()) endpoints += ",";
      endpoints += server::net::to_string(worker->endpoint());
      workers.push_back(std::move(worker));
    }
  }
  ~Fleet() {
    for (auto& worker : workers) {
      worker->request_stop();
      worker->wait();
    }
  }
};

// --- wire codecs -------------------------------------------------------------

TEST(DistributedCodec, MomentsRoundTripBitExactly) {
  const auto design = circuits::load_design("voter", 0.3);
  const auto config = audit_config();
  tvla::ShardRunner runner(design.netlist, lib(),
                           core::tvla_config_for(config, design));
  ASSERT_GE(runner.shard_count(), 2u);
  const auto moments = runner.run_shard(1);

  serialize::Writer out;
  tvla::write_moments(out, moments);
  const auto bytes = out.finish();

  serialize::Reader in(bytes);
  const auto back = tvla::read_moments(in);

  // Re-encoding the decoded state must reproduce the archive byte for
  // byte - the accumulator survived the trip with every IEEE-754 bit
  // pattern intact, which is exactly what the merge replay requires.
  serialize::Writer again;
  tvla::write_moments(again, back);
  EXPECT_EQ(bytes, again.finish());
}

TEST(DistributedCodec, NetlistRoundTripPreservesDesignFingerprint) {
  const auto design = circuits::load_design("arbiter", 0.3);
  serialize::Writer out;
  netlist::write_netlist(out, design.netlist);
  const auto bytes = out.finish();

  serialize::Reader in(bytes);
  const auto back = netlist::read_netlist(in);
  EXPECT_EQ(back.gate_count(), design.netlist.gate_count());
  circuits::Design rebuilt{design.name, back, design.roles};
  EXPECT_EQ(core::design_fingerprint(rebuilt),
            core::design_fingerprint(design));
}

TEST(DistributedCodec, DesignRequestRoundTripsAndVerifiesFingerprint) {
  const auto design = circuits::load_design("des3", 0.3);
  const auto payload = server::encode_design_request(design);
  serialize::Reader in(payload);
  EXPECT_EQ(server::decode_request_kind(in), server::RequestKind::kDesign);
  const auto back = server::decode_design_request(in);
  EXPECT_EQ(back.fingerprint, core::design_fingerprint(design));
  EXPECT_EQ(back.design.name, design.name);
  EXPECT_EQ(back.design.roles, design.roles);
  EXPECT_EQ(back.design.netlist.gate_count(), design.netlist.gate_count());
}

TEST(DistributedCodec, ShardRequestRoundTripsAndRejectsEmptyRanges) {
  server::ShardRequest request;
  request.fingerprint = 0xfeedbeefcafe;
  request.config = audit_config();
  request.shard_begin = 4;
  request.shard_end = 8;
  {
    serialize::Reader in(server::encode_shard_request(request));
    EXPECT_EQ(server::decode_request_kind(in), server::RequestKind::kShard);
    const auto back = server::decode_shard_request(in);
    EXPECT_EQ(back.fingerprint, request.fingerprint);
    EXPECT_EQ(back.shard_begin, 4u);
    EXPECT_EQ(back.shard_end, 8u);
    // The canonical config travels with threads zeroed (fingerprint-stable),
    // so a worker's thread count can never perturb shard results.
    EXPECT_EQ(core::config_fingerprint(back.config),
              core::config_fingerprint(request.config));
  }
  request.shard_end = request.shard_begin;  // empty range: malformed
  serialize::Reader in(server::encode_shard_request(request));
  (void)server::decode_request_kind(in);
  EXPECT_THROW((void)server::decode_shard_request(in), std::runtime_error);
}

TEST(DistributedCodec, ShardReplyCarriesMergeableMoments) {
  const auto design = circuits::load_design("voter", 0.3);
  const auto config = audit_config();
  tvla::ShardRunner runner(design.netlist, lib(),
                           core::tvla_config_for(config, design));
  ASSERT_GE(runner.shard_count(), 2u);

  server::ShardReply reply;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    reply.shards.push_back({shard, runner.run_shard(shard)});
  }
  const auto back = server::decode_shard_reply(server::encode_shard_reply(reply));
  ASSERT_EQ(back.shards.size(), 2u);

  // Merging the decoded blocks in ascending order must finalize to the
  // same report as merging the originals - the coordinator's whole
  // bit-identity argument in miniature.
  auto direct = reply.shards[0].moments;
  direct.merge(reply.shards[1].moments);
  auto wired = back.shards[0].moments;
  wired.merge(back.shards[1].moments);
  tvla::ShardRunner finalizer(design.netlist, lib(),
                              core::tvla_config_for(config, design));
  expect_reports_bit_identical(finalizer.finalize(wired),
                               finalizer.finalize(direct));
}

// --- worker process behavior -------------------------------------------------

TEST(DistributedWorker, PingIdentifiesAShardWorker) {
  Fleet fleet(1);
  server::Client client(
      server::net::to_string(fleet.workers[0]->endpoint()));
  const auto reply = client.ping();
  EXPECT_EQ(reply.protocol, server::kProtocolVersion);
  EXPECT_EQ(reply.model_name, "shard-worker");
}

TEST(DistributedWorker, ShardForUninstalledDesignGetsUnknownDesignStatus) {
  Fleet fleet(1);
  const int fd = server::net::connect_endpoint(fleet.workers[0]->endpoint());
  ASSERT_GE(fd, 0);
  server::ShardRequest request;
  request.fingerprint = 0x1234;  // never installed
  request.config = audit_config();
  request.shard_begin = 0;
  request.shard_end = 1;
  server::write_frame(fd, server::encode_shard_request(request));
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(server::read_frame(fd, server::kDefaultMaxFrame, payload),
            server::FrameResult::kFrame);
  const auto response = server::decode_response(std::move(payload));
  EXPECT_EQ(response.status, server::Status::kUnknownDesign);
  ::close(fd);
}

// --- coordinator byte-identity -----------------------------------------------

TEST(DistributedAudit, BitIdenticalToSingleHostAtEveryWorkerCount) {
  const auto designs = suite_designs();
  const auto config = audit_config();
  const auto expected = core::audit_designs(designs, lib(), config);

  for (const std::size_t worker_count : {0u, 1u, 2u, 4u}) {
    Fleet fleet(worker_count);
    server::WorkerPoolOptions options;
    options.workers = fleet.endpoints;
    options.local_threads = 2;
    server::WorkerPool pool(options);
    EXPECT_EQ(pool.worker_count(), worker_count);
    const auto reports = pool.audit(designs, lib(), config);
    ASSERT_EQ(reports.size(), expected.size());
    for (std::size_t d = 0; d < expected.size(); ++d) {
      expect_reports_bit_identical(reports[d], expected[d]);
    }
  }
}

TEST(DistributedAudit, EarlyStopBudgetReplaysCheckpointsIdentically) {
  // The budget path is where the merge-replay contract earns its keep: the
  // coordinator must fire checkpoint evaluations at exactly the scheduler's
  // shard-prefix counts, stop at the same prefix, and discard the same
  // tail shards.
  auto config = audit_config();
  config.tvla.traces = 2048;
  config.tvla.budget.enabled = true;
  config.tvla.budget.min_traces = 256;
  const auto designs = suite_designs();
  const auto expected = core::audit_designs(designs, lib(), config);

  Fleet fleet(2);
  server::WorkerPoolOptions options;
  options.workers = fleet.endpoints;
  options.local_threads = 2;
  server::WorkerPool pool(options);
  const auto reports = pool.audit(designs, lib(), config);
  ASSERT_EQ(reports.size(), expected.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    expect_reports_bit_identical(reports[d], expected[d]);
  }
}

TEST(DistributedAudit, DeadEndpointFallsBackToLocalLanes) {
  // Nothing listens on the reserved port 1: the feeder fails to connect,
  // marks the worker dead, and the local lanes complete the whole campaign
  // with identical bits.
  const auto designs = suite_designs();
  const auto config = audit_config();
  const auto expected = core::audit_designs(designs, lib(), config);

  server::WorkerPoolOptions options;
  options.workers = "127.0.0.1:1";
  options.local_threads = 2;
  server::WorkerPool pool(options);
  const auto reports = pool.audit(designs, lib(), config);
  ASSERT_EQ(reports.size(), expected.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    expect_reports_bit_identical(reports[d], expected[d]);
  }

  const auto health = pool.health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_FALSE(health[0].alive);
  EXPECT_EQ(health[0].shards_done, 0u);
  EXPECT_EQ(pool.totals().moments_in, 0u);
}

TEST(DistributedAudit, WorkerKilledMidCampaignStillByteIdentical) {
  auto config = audit_config();
  config.tvla.traces = 32768;  // long enough to straddle the kill
  std::vector<circuits::Design> designs;
  designs.push_back(circuits::load_design("des3", 1.0));
  const auto expected = core::audit_designs(designs, lib(), config);

  Fleet fleet(2);
  server::WorkerPoolOptions options;
  options.workers = fleet.endpoints;
  options.local_threads = 2;
  server::WorkerPool pool(options);

  std::vector<tvla::LeakageReport> reports;
  std::thread auditor(
      [&] { reports = pool.audit(designs, lib(), config); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // A hard mid-campaign loss: the worker drains its current request and
  // goes away; whatever it never acknowledged is requeued and re-run on
  // the remaining lanes.
  fleet.workers[1]->request_stop();
  fleet.workers[1]->wait();
  auditor.join();

  ASSERT_EQ(reports.size(), 1u);
  expect_reports_bit_identical(reports[0], expected[0]);
}

TEST(DistributedAudit, HealthAndTotalsTrackTheFleet) {
  const auto designs = suite_designs();
  const auto config = audit_config();

  Fleet fleet(1);
  server::WorkerPoolOptions options;
  options.workers = fleet.endpoints;
  options.local_threads = 1;
  server::WorkerPool pool(options);
  (void)pool.audit(designs, lib(), config);

  const auto health = pool.health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].endpoint,
            server::net::to_string(fleet.workers[0]->endpoint()));
  EXPECT_TRUE(health[0].alive);
  const auto totals = pool.totals();
  EXPECT_EQ(totals.moments_in, health[0].shards_done);
  EXPECT_EQ(totals.shards_out, fleet.workers[0]->shards_run() +
                                   totals.resends);
  if (totals.shards_out > 0) {
    EXPECT_GT(totals.bytes, 0u);
  }
}

TEST(DistributedAudit, DuplicateShardIndexInReplyIsRejectedNotMerged) {
  // A protocol-correct but buggy worker answers a shard request with the
  // right count but one in-range index duplicated. Each entry must be
  // exactly begin + i: a duplicate would double-store one slot and
  // double-decrement the remaining count, flipping `done` with shards
  // still unstored - the merge replay would then read an empty slot. The
  // coordinator must instead drop the worker, requeue the chunk, and let
  // the local lanes finish with identical bits. The campaign is long and
  // the local side single-threaded so the feeder is guaranteed to win
  // chunks from the shared queue before the lanes drain it.
  auto config = audit_config();
  config.tvla.traces = 32768;
  std::vector<circuits::Design> designs;
  designs.push_back(circuits::load_design("des3", 1.0));
  const auto expected = core::audit_designs(designs, lib(), config);

  const int listen_fd = server::net::listen_endpoint(
      server::net::parse_endpoint("tcp:127.0.0.1:0"), 4);
  const auto endpoint = server::net::bound_endpoint(
      listen_fd, server::net::parse_endpoint("tcp:127.0.0.1:0"));
  std::thread malicious([&, listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    std::optional<circuits::Design> installed;
    std::vector<std::uint8_t> payload;
    try {
      for (;;) {
        if (server::read_frame(fd, server::kDefaultMaxFrame, payload) !=
            server::FrameResult::kFrame) {
          break;
        }
        serialize::Reader in(std::move(payload));
        const auto kind = server::decode_request_kind(in);
        std::vector<std::uint8_t> response;
        if (kind == server::RequestKind::kDesign) {
          installed = server::decode_design_request(in).design;
          response = server::encode_response(server::Status::kOk, "", false, {});
        } else {
          const auto request = server::decode_shard_request(in);
          tvla::ShardRunner runner(
              installed->netlist, lib(),
              core::tvla_config_for(request.config, *installed));
          server::ShardReply reply;
          for (std::uint64_t shard = request.shard_begin;
               shard < request.shard_end; ++shard) {
            server::ShardResult result;
            result.shard = request.shard_begin;  // every entry: same index
            result.moments =
                runner.run_shard(static_cast<std::size_t>(shard));
            reply.shards.push_back(std::move(result));
          }
          response = server::encode_response(server::Status::kOk, "", false,
                                             server::encode_shard_reply(reply));
        }
        server::write_frame(fd, response);
        payload.clear();
      }
    } catch (const std::exception&) {
      // Coordinator hung up on us mid-exchange - exactly what we expect.
    }
    ::close(fd);
  });

  server::WorkerPoolOptions options;
  options.workers = server::net::to_string(endpoint);
  options.local_threads = 1;
  server::WorkerPool pool(options);
  const auto reports = pool.audit(designs, lib(), config);
  ASSERT_EQ(reports.size(), expected.size());
  for (std::size_t d = 0; d < expected.size(); ++d) {
    expect_reports_bit_identical(reports[d], expected[d]);
  }

  const auto health = pool.health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_FALSE(health[0].alive);  // dropped after the bad reply
  EXPECT_EQ(health[0].shards_done, 0u);
  EXPECT_GT(pool.totals().resends, 0u);

  ::close(listen_fd);
  malicious.join();
}

}  // namespace
