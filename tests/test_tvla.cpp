#include <gtest/gtest.h>

#include <cmath>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/memctrl.hpp"
#include "netlist/netlist.hpp"
#include "tvla/tvla.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::NetId;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

TEST(Tvla, DetectsDataDependentGate) {
  // y = a & b with both inputs sensitive: toggles correlate strongly with
  // the fixed-vs-random split.
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_cell(CellType::kAnd, {a, b});
  nl.mark_output(y);
  tvla::TvlaConfig config;
  config.traces = 8192;
  config.noise_std_fj = 0.5;
  const auto report = tvla::run_fixed_vs_random(nl, lib(), config);
  EXPECT_GT(std::fabs(report.t_value(nl.net(y).driver)), 4.5);
  EXPECT_FALSE(report.leaky_groups().empty());
}

TEST(Tvla, NoFalsePositivesOnRandomCommonInputs) {
  // All inputs random-common: both classes see identical stimulus
  // distributions, so nothing may exceed the threshold.
  const auto nl = circuits::make_multiplier(6);
  tvla::TvlaConfig config;
  config.traces = 4096;
  config.input_class.assign(nl.primary_inputs().size(),
                            tvla::InputClass::kRandomCommon);
  const auto report = tvla::run_fixed_vs_random(nl, lib(), config);
  EXPECT_TRUE(report.leaky_groups().empty());
}

TEST(Tvla, FixedCommonInputsProduceNoActivity) {
  // A cone fed only by the fixed key never toggles -> t exactly 0. A
  // *linear* mix (XOR) of key and data has class-independent toggle
  // statistics (Bernoulli(1/2) either way) -> not flagged. The nonlinear
  // AND of two data bits IS flagged: its settled value is constant in the
  // fixed class, skewing the transition probability.
  netlist::Netlist nl;
  const NetId key = nl.add_input("key");
  const NetId d1 = nl.add_input("d1");
  const NetId d2 = nl.add_input("d2");
  const NetId key_only = nl.add_cell(CellType::kNot, {key});
  const NetId linear_mix = nl.add_cell(CellType::kXor, {key, d1});
  const NetId nonlinear = nl.add_cell(CellType::kAnd, {d1, d2});
  nl.mark_output(key_only);
  nl.mark_output(linear_mix);
  nl.mark_output(nonlinear);
  tvla::TvlaConfig config;
  config.traces = 8192;
  config.noise_std_fj = 0.5;
  config.input_class = {tvla::InputClass::kFixedCommon,
                        tvla::InputClass::kSensitive,
                        tvla::InputClass::kSensitive};
  const auto report = tvla::run_fixed_vs_random(nl, lib(), config);
  EXPECT_EQ(report.t_value(nl.net(key_only).driver), 0.0);
  EXPECT_LT(std::fabs(report.t_value(nl.net(linear_mix).driver)), 4.5);
  EXPECT_GT(std::fabs(report.t_value(nl.net(nonlinear).driver)), 4.5);
}

TEST(Tvla, DeterministicForSeed) {
  const auto nl = circuits::make_adder(8);
  tvla::TvlaConfig config;
  config.traces = 2048;
  config.seed = 33;
  const auto a = tvla::run_fixed_vs_random(nl, lib(), config);
  const auto b = tvla::run_fixed_vs_random(nl, lib(), config);
  ASSERT_EQ(a.t_values().size(), b.t_values().size());
  for (std::size_t g = 0; g < a.t_values().size(); ++g) {
    EXPECT_DOUBLE_EQ(a.t_values()[g], b.t_values()[g]);
  }
  config.seed = 34;
  const auto c = tvla::run_fixed_vs_random(nl, lib(), config);
  bool any_different = false;
  for (std::size_t g = 0; g < a.t_values().size(); ++g) {
    if (a.t_values()[g] != c.t_values()[g]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Tvla, ZeroTracesYieldsAllZero) {
  const auto nl = circuits::make_adder(4);
  tvla::TvlaConfig config;
  config.traces = 0;
  const auto report = tvla::run_fixed_vs_random(nl, lib(), config);
  for (const double t : report.t_values()) EXPECT_EQ(t, 0.0);
  EXPECT_TRUE(report.leaky_groups().empty());
  EXPECT_EQ(report.total_abs_t(), 0.0);
}

TEST(Tvla, NoiseFloorShrinksT) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  tvla::TvlaConfig quiet;
  quiet.traces = 4096;
  quiet.noise_std_fj = 0.2;
  tvla::TvlaConfig loud = quiet;
  loud.noise_std_fj = 8.0;
  const auto report_quiet = tvla::run_fixed_vs_random(nl, lib(), quiet);
  const auto report_loud = tvla::run_fixed_vs_random(nl, lib(), loud);
  EXPECT_GT(report_quiet.total_abs_t(), report_loud.total_abs_t() * 2.0);
}

TEST(Tvla, MoreTracesFindMoreLeaks) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  tvla::TvlaConfig small;
  small.traces = 512;
  small.noise_std_fj = 2.0;
  tvla::TvlaConfig big = small;
  big.traces = 16384;
  const auto report_small = tvla::run_fixed_vs_random(nl, lib(), small);
  const auto report_big = tvla::run_fixed_vs_random(nl, lib(), big);
  EXPECT_GE(report_big.leaky_count(), report_small.leaky_count());
  EXPECT_GT(report_big.leaky_count(), 0u);
}

TEST(Tvla, SequentialDesignRuns) {
  const auto nl = circuits::make_memctrl(6, 8);
  tvla::TvlaConfig config;
  config.traces = 16384;
  config.cycles_per_batch = 16;
  config.noise_std_fj = 0.8;
  // Inputs: req_valid, req_rw, row(6), col(6), wdata(8), wmask(8).
  config.input_class.assign(nl.primary_inputs().size(),
                            tvla::InputClass::kRandomCommon);
  for (std::size_t i = 2 + 12; i < 2 + 12 + 8; ++i) {
    config.input_class[i] = tvla::InputClass::kSensitive;
  }
  const auto report = tvla::run_fixed_vs_random(nl, lib(), config);
  for (const double t : report.t_values()) EXPECT_TRUE(std::isfinite(t));
  // The write-data merge / DQ-bus cone is data-dependent: gates must leak.
  EXPECT_GT(report.leaky_count(), 0u);
}

TEST(Tvla, FixedVsFixedDistinguishesVectors) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellType::kBuf, {a});
  nl.mark_output(y);
  tvla::TvlaConfig config;
  config.traces = 4096;
  config.noise_std_fj = 0.3;
  config.fixed_input = {true};
  config.fixed_input_b = {false};
  const auto report = tvla::run_fixed_vs_fixed(nl, lib(), config);
  // Class A settles high (toggle iff base was 0), class B settles low:
  // different toggle probabilities unless base is uniform... both are
  // Bernoulli(1/2) against a random base - so the BUF shows no difference.
  // The discriminating gate is one that computes on the fixed value:
  EXPECT_TRUE(std::isfinite(report.t_value(nl.net(y).driver)));
}

TEST(Tvla, ReportAccessorsConsistent) {
  const auto nl = circuits::make_adder(6);
  tvla::TvlaConfig config;
  config.traces = 2048;
  const auto report = tvla::run_fixed_vs_random(nl, lib(), config);
  EXPECT_EQ(report.group_count(), nl.gate_count());
  EXPECT_GT(report.measured_count(), 0u);
  EXPECT_LE(report.measured_count(), report.group_count());
  EXPECT_NEAR(report.leakage_per_gate(),
              report.total_abs_t() / report.measured_count(), 1e-12);
  // leaky_groups is sorted by |t| descending.
  const auto leaky = report.leaky_groups();
  for (std::size_t i = 1; i < leaky.size(); ++i) {
    EXPECT_GE(std::fabs(report.t_value(leaky[i - 1])),
              std::fabs(report.t_value(leaky[i])));
  }
}

TEST(Tvla, ConfigValidation) {
  const auto nl = circuits::make_adder(4);
  tvla::TvlaConfig config;
  config.fixed_input = {true};  // wrong size
  EXPECT_THROW((void)tvla::run_fixed_vs_random(nl, lib(), config),
               std::invalid_argument);
  tvla::TvlaConfig config2;
  config2.input_class = {tvla::InputClass::kSensitive};  // wrong size
  EXPECT_THROW((void)tvla::run_fixed_vs_random(nl, lib(), config2),
               std::invalid_argument);
}

}  // namespace
