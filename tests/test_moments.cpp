#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tvla/moments.hpp"
#include "util/rng.hpp"

namespace {

using polaris::tvla::MomentAccumulator;

/// Naive reference: two-pass central moments (paper Eq. 2 generalized).
struct NaiveMoments {
  double mean = 0.0;
  double cm2 = 0.0, cm3 = 0.0, cm4 = 0.0;

  explicit NaiveMoments(const std::vector<double>& xs) {
    for (const double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    for (const double x : xs) {
      const double d = x - mean;
      cm2 += d * d;
      cm3 += d * d * d;
      cm4 += d * d * d * d;
    }
    const double n = static_cast<double>(xs.size());
    cm2 /= n;
    cm3 /= n;
    cm4 /= n;
  }
};

TEST(Moments, EmptyAndSingle) {
  MomentAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance_sample(), 0.0);
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance_sample(), 0.0);
  EXPECT_EQ(acc.variance_population(), 0.0);
}

TEST(Moments, KnownSmallSet) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4.
  MomentAccumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance_population(), 4.0);
  EXPECT_NEAR(acc.variance_sample(), 32.0 / 7.0, 1e-12);
}

TEST(Moments, OnePassMatchesTwoPassRandomData) {
  // Paper Sec. II-A: the one-pass update (Eq. 3-4) must reproduce the
  // naive two-pass result. Property-tested over random data.
  polaris::util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(500 + trial * 37);
    for (auto& x : xs) x = rng.uniform(-3.0, 7.0);
    MomentAccumulator acc;
    for (const double x : xs) acc.add(x);
    const NaiveMoments naive(xs);
    EXPECT_NEAR(acc.mean(), naive.mean, 1e-9);
    EXPECT_NEAR(acc.central_moment(2), naive.cm2, 1e-9);
    EXPECT_NEAR(acc.central_moment(3), naive.cm3, 1e-8);
    EXPECT_NEAR(acc.central_moment(4), naive.cm4, 1e-7);
  }
}

TEST(Moments, NumericallyStableWithLargeOffset) {
  // Catastrophic cancellation check: data with a huge common offset.
  MomentAccumulator acc;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) acc.add(offset + (i % 10));
  EXPECT_NEAR(acc.mean(), offset + 4.5, 1e-3);
  EXPECT_NEAR(acc.variance_population(), 8.25, 1e-3);
}

TEST(Moments, MergeEqualsSequential) {
  polaris::util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> xs(400);
    for (auto& x : xs) x = rng.gaussian();
    MomentAccumulator whole;
    for (const double x : xs) whole.add(x);
    MomentAccumulator left, right;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      (i < 150 ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(left.central_moment(2), whole.central_moment(2), 1e-9);
    EXPECT_NEAR(left.central_moment(3), whole.central_moment(3), 1e-8);
    EXPECT_NEAR(left.central_moment(4), whole.central_moment(4), 1e-7);
  }
}

TEST(Moments, MergeWithEmpty) {
  MomentAccumulator a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // copy
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Moments, SkewnessAndKurtosisOfKnownShapes) {
  // Symmetric data: skewness ~ 0; uniform kurtosis ~ 1.8.
  MomentAccumulator acc;
  polaris::util::Xoshiro256 rng(77);
  for (int i = 0; i < 200000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.skewness(), 0.0, 0.02);
  EXPECT_NEAR(acc.kurtosis(), 1.8, 0.03);

  // Gaussian kurtosis ~ 3.
  MomentAccumulator gauss;
  for (int i = 0; i < 200000; ++i) gauss.add(rng.gaussian());
  EXPECT_NEAR(gauss.kurtosis(), 3.0, 0.1);
}

TEST(Moments, ConstantDataHasZeroHigherMoments) {
  MomentAccumulator acc;
  for (int i = 0; i < 100; ++i) acc.add(2.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.variance_population(), 0.0, 1e-12);
  EXPECT_EQ(acc.skewness(), 0.0);
  EXPECT_EQ(acc.kurtosis(), 0.0);
}

}  // namespace
