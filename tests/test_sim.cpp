#include <gtest/gtest.h>

#include "circuits/arith.hpp"
#include "circuits/random_logic.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::NetId;

TEST(Simulator, SingleGateTruthTables) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.mark_output(nl.add_cell(CellType::kAnd, {a, b}));
  nl.mark_output(nl.add_cell(CellType::kNand, {a, b}));
  nl.mark_output(nl.add_cell(CellType::kXor, {a, b}));
  sim::Simulator sim(nl);
  EXPECT_EQ(sim.eval_single({false, false}),
            (std::vector<bool>{false, true, false}));
  EXPECT_EQ(sim.eval_single({true, false}),
            (std::vector<bool>{false, true, true}));
  EXPECT_EQ(sim.eval_single({true, true}),
            (std::vector<bool>{true, false, false}));
}

TEST(Simulator, ConstantsAndRand) {
  netlist::Netlist nl;
  (void)nl.add_input("a");
  const NetId c0 = nl.add_const(false);
  const NetId c1 = nl.add_const(true);
  const NetId r = nl.add_rand("r");
  nl.mark_output(c0);
  nl.mark_output(c1);
  nl.mark_output(r);
  sim::Simulator sim(nl, 123);
  sim.eval();
  EXPECT_EQ(sim.value(c0), 0u);
  EXPECT_EQ(sim.value(c1), ~0ULL);
  // Fresh randomness changes across evals (overwhelmingly likely).
  const std::uint64_t r1 = sim.value(r);
  sim.eval();
  EXPECT_NE(sim.value(r), r1);
}

TEST(Simulator, RandIsSeedDeterministic) {
  netlist::Netlist nl;
  const NetId r = nl.add_rand("r");
  nl.mark_output(r);
  sim::Simulator sim_a(nl, 9), sim_b(nl, 9), sim_c(nl, 10);
  sim_a.eval();
  sim_b.eval();
  sim_c.eval();
  EXPECT_EQ(sim_a.value(r), sim_b.value(r));
  EXPECT_NE(sim_a.value(r), sim_c.value(r));
}

TEST(Simulator, TogglesTrackValueChanges) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellType::kNot, {a});
  nl.mark_output(y);
  sim::Simulator sim(nl);
  sim.set_input(0, 0);
  sim.eval();
  sim.set_input(0, ~0ULL);  // all lanes flip
  sim.eval();
  EXPECT_EQ(sim.toggles(nl.net(y).driver), ~0ULL);
  sim.set_input(0, ~0ULL);  // no change
  sim.eval();
  EXPECT_EQ(sim.toggles(nl.net(y).driver), 0u);
}

TEST(Simulator, LanesAreIndependent) {
  const auto nl = circuits::make_adder(8);
  sim::Simulator sim(nl);
  // lane 0: 3 + 5; lane 1: 100 + 27.
  for (std::size_t bit = 0; bit < 8; ++bit) {
    const std::uint64_t a_word = (((3ULL >> bit) & 1) << 0) |
                                 (((100ULL >> bit) & 1) << 1);
    const std::uint64_t b_word = (((5ULL >> bit) & 1) << 0) |
                                 (((27ULL >> bit) & 1) << 1);
    sim.set_input(bit, a_word);
    sim.set_input(8 + bit, b_word);
  }
  sim.eval();
  std::uint64_t lane0 = 0, lane1 = 0;
  for (std::size_t bit = 0; bit < 8; ++bit) {
    const std::uint64_t word = sim.value(nl.primary_outputs()[bit]);
    lane0 |= (word & 1ULL) << bit;
    lane1 |= ((word >> 1) & 1ULL) << bit;
  }
  EXPECT_EQ(lane0, 8u);
  EXPECT_EQ(lane1, 127u);
}

TEST(Simulator, DffHoldsState) {
  // q <= d; d = a. q must lag a by one latch.
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.add_net("q");
  nl.add_cell_driving(CellType::kDff, std::array{a}, q);
  nl.mark_output(q);
  sim::Simulator sim(nl);
  sim.set_input(0, ~0ULL);
  sim.eval();
  EXPECT_EQ(sim.value(q), 0u);  // state not yet latched
  sim.latch();
  sim.eval();
  EXPECT_EQ(sim.value(q), ~0ULL);
}

TEST(Simulator, SequentialCounterCounts) {
  // 2-bit counter: q0 <= ~q0; q1 <= q1 ^ q0.
  netlist::Netlist nl;
  const NetId q0 = nl.add_net("q0");
  const NetId q1 = nl.add_net("q1");
  const NetId d0 = nl.add_cell(CellType::kNot, {q0});
  const NetId d1 = nl.add_cell(CellType::kXor, {q1, q0});
  nl.add_cell_driving(CellType::kDff, std::array{d0}, q0);
  nl.add_cell_driving(CellType::kDff, std::array{d1}, q1);
  nl.mark_output(q0);
  nl.mark_output(q1);
  sim::Simulator sim(nl);
  std::vector<unsigned> sequence;
  for (int cycle = 0; cycle < 6; ++cycle) {
    sim.eval();
    sequence.push_back(static_cast<unsigned>((sim.value(q0) & 1) |
                                             ((sim.value(q1) & 1) << 1)));
    sim.latch();
  }
  EXPECT_EQ(sequence, (std::vector<unsigned>{0, 1, 2, 3, 0, 1}));
}

TEST(Simulator, ResetClearsStateAndReseeds) {
  netlist::Netlist nl;
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_cell(CellType::kNot, {q});
  nl.add_cell_driving(CellType::kDff, std::array{nq}, q);
  nl.mark_output(q);
  sim::Simulator sim(nl);
  sim.eval();
  sim.latch();
  sim.eval();
  EXPECT_EQ(sim.value(q), ~0ULL);
  sim.reset(1);
  sim.eval();
  EXPECT_EQ(sim.value(q), 0u);
  EXPECT_EQ(sim.cycle(), 1u);
}

TEST(Simulator, MixedInputsSplitLanes) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(a);
  sim::Simulator sim(nl, 4);
  const std::uint64_t mask = 0x00000000ffffffffULL;
  sim.set_inputs_mixed({true}, mask);
  sim.eval();
  // Fixed lanes carry the fixed bit (1); random lanes are mixed.
  EXPECT_EQ(sim.value(a) & mask, mask);
}

TEST(Simulator, InputValidation) {
  const auto nl = circuits::make_adder(4);
  sim::Simulator sim(nl);
  EXPECT_THROW(sim.eval_single({true}), std::invalid_argument);
  EXPECT_THROW(sim.set_inputs_mixed({true}, 0), std::invalid_argument);
  EXPECT_THROW(sim.set_input_net(nl.primary_outputs()[0], 0),
               std::invalid_argument);
}

TEST(Simulator, BroadcastMatchesLanewiseRandom) {
  // Property: full-word broadcast inputs produce identical values across
  // all 64 lanes for arbitrary circuits.
  circuits::RandomLogicConfig config;
  config.gates = 250;
  config.seed = 12;
  const auto nl = circuits::make_random_logic(config);
  sim::Simulator sim(nl);
  util::Xoshiro256 rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
      sim.set_input(i, (rng() & 1) != 0 ? ~0ULL : 0ULL);
    }
    sim.eval();
    for (const NetId out : nl.primary_outputs()) {
      const std::uint64_t word = sim.value(out);
      EXPECT_TRUE(word == 0 || word == ~0ULL);
    }
  }
}

}  // namespace
