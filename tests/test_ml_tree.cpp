#include <gtest/gtest.h>

#include <numeric>

#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris::ml;

Dataset xor_dataset(int copies) {
  Dataset data;
  for (int c = 0; c < copies; ++c) {
    data.add({0, 0}, 0);
    data.add({0, 1}, 1);
    data.add({1, 0}, 1);
    data.add({1, 1}, 0);
  }
  return data;
}

std::vector<std::size_t> all_indices(const Dataset& data) {
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

TEST(ClassificationTree, LearnsXorExactly) {
  const Dataset data = xor_dataset(8);
  TreeConfig config;
  config.max_depth = 3;
  const Tree tree = fit_classification_tree(data, all_indices(data), config);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = tree.predict(data.row(i));
    EXPECT_EQ(p >= 0.5 ? 1 : 0, data.label(i)) << "row " << i;
  }
  EXPECT_GE(tree.depth(), 2u);
}

TEST(ClassificationTree, DepthZeroIsPrior) {
  Dataset data;
  data.add({0.0}, 1);
  data.add({1.0}, 1);
  data.add({2.0}, 0);
  TreeConfig config;
  config.max_depth = 0;
  const Tree tree = fit_classification_tree(data, all_indices(data), config);
  EXPECT_EQ(tree.nodes.size(), 1u);
  EXPECT_NEAR(tree.nodes[0].value, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(ClassificationTree, RespectsMinSamplesLeaf) {
  Dataset data;
  for (int i = 0; i < 20; ++i) data.add({static_cast<double>(i)}, i < 10 ? 0 : 1);
  TreeConfig config;
  config.max_depth = 10;
  config.min_samples_leaf = 8;
  const Tree tree = fit_classification_tree(data, all_indices(data), config);
  // Any split must leave >= 8 samples per side: at most one split here.
  EXPECT_LE(tree.leaf_count(), 2u);
}

TEST(ClassificationTree, WeightsShiftTheDecision) {
  // Same geometry, but class-1 samples get huge weight: the leaf
  // probability must follow the weights.
  Dataset data;
  data.add({0.0}, 0, 1.0);
  data.add({0.0}, 0, 1.0);
  data.add({0.0}, 1, 10.0);
  TreeConfig config;
  config.max_depth = 0;
  const Tree tree = fit_classification_tree(data, all_indices(data), config);
  EXPECT_NEAR(tree.nodes[0].value, 10.0 / 12.0, 1e-12);
}

TEST(ClassificationTree, CoverTracksWeights) {
  Dataset data = xor_dataset(4);
  TreeConfig config;
  const Tree tree = fit_classification_tree(data, all_indices(data), config);
  EXPECT_DOUBLE_EQ(tree.nodes[0].cover, 16.0);
  // Children covers sum to the parent cover.
  for (const auto& node : tree.nodes) {
    if (!node.is_leaf()) {
      EXPECT_NEAR(tree.nodes[static_cast<std::size_t>(node.left)].cover +
                      tree.nodes[static_cast<std::size_t>(node.right)].cover,
                  node.cover, 1e-9);
    }
  }
}

TEST(ClassificationTree, HandlesContinuousFeatures) {
  // y = 1 iff x > 0.37: needs the sorted-scan path (many distinct values).
  Dataset data;
  polaris::util::Xoshiro256 rng(5);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform();
    data.add({x}, x > 0.37 ? 1 : 0);
  }
  TreeConfig config;
  config.max_depth = 1;
  const Tree tree = fit_classification_tree(data, all_indices(data), config);
  ASSERT_FALSE(tree.nodes[0].is_leaf());
  EXPECT_NEAR(tree.nodes[0].threshold, 0.37, 0.05);
}

TEST(ClassificationTree, BootstrappedIndicesWithMultiplicity) {
  Dataset data = xor_dataset(2);
  // Overweight one row by repetition.
  std::vector<std::size_t> indices = {1, 1, 1, 1, 1, 1, 0};
  TreeConfig config;
  config.max_depth = 0;
  const Tree tree = fit_classification_tree(data, indices, config);
  EXPECT_NEAR(tree.nodes[0].value, 6.0 / 7.0, 1e-12);
}

TEST(BoostTree, NewtonLeafValue) {
  // One leaf: value = -sum(g)/(sum(h)+lambda).
  Dataset data;
  data.add({0.0}, 1);
  data.add({1.0}, 0);
  const std::vector<double> g{-0.5, 0.5};
  const std::vector<double> h{0.25, 0.25};
  BoostTreeConfig config;
  config.max_depth = 0;
  config.lambda = 1.0;
  const Tree tree = fit_boost_tree(data, g, h, config);
  EXPECT_NEAR(tree.nodes[0].value, 0.0, 1e-12);  // gradients cancel
}

TEST(BoostTree, SplitsOnInformativeFeature) {
  Dataset data;
  std::vector<double> g, h;
  for (int i = 0; i < 100; ++i) {
    const double x = i < 50 ? 0.0 : 1.0;
    data.add({x, 0.5}, x > 0.5 ? 1 : 0);
    g.push_back(x > 0.5 ? -0.5 : 0.5);
    h.push_back(0.25);
  }
  BoostTreeConfig config;
  config.max_depth = 2;
  const Tree tree = fit_boost_tree(data, g, h, config);
  ASSERT_FALSE(tree.nodes[0].is_leaf());
  EXPECT_EQ(tree.nodes[0].feature, 0);
  // Left leaf (x=0) pushes negative class: value = -25/(12.5+1) < 0 ...
  const double left = tree.nodes[static_cast<std::size_t>(tree.nodes[0].left)].value;
  const double right = tree.nodes[static_cast<std::size_t>(tree.nodes[0].right)].value;
  EXPECT_LT(left, 0.0);
  EXPECT_GT(right, 0.0);
}

TEST(BoostTree, GammaPrunesWeakSplits) {
  Dataset data;
  std::vector<double> g, h;
  polaris::util::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    data.add({rng.uniform()}, 0);
    g.push_back(rng.uniform(-0.01, 0.01));  // nearly no signal
    h.push_back(0.25);
  }
  BoostTreeConfig strict;
  strict.max_depth = 3;
  strict.gamma = 10.0;
  const Tree tree = fit_boost_tree(data, g, h, strict);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(Tree, PredictTraversesCorrectPath) {
  Tree tree;
  tree.nodes.resize(3);
  tree.nodes[0] = {0, 0.5, 1, 2, 0.0, 4.0};
  tree.nodes[1] = {-1, 0.0, -1, -1, 0.25, 2.0};
  tree.nodes[2] = {-1, 0.0, -1, -1, 0.75, 2.0};
  EXPECT_DOUBLE_EQ(tree.predict(std::array{0.3}), 0.25);
  EXPECT_DOUBLE_EQ(tree.predict(std::array{0.5}), 0.25);  // <= goes left
  EXPECT_DOUBLE_EQ(tree.predict(std::array{0.7}), 0.75);
}

TEST(Ensemble, MarginAndLinks) {
  Tree stump;
  stump.nodes.resize(1);
  stump.nodes[0] = {-1, 0.0, -1, -1, 1.0, 1.0};
  TreeEnsemble ensemble;
  ensemble.base = 0.5;
  ensemble.trees.push_back({stump, 2.0});
  EXPECT_DOUBLE_EQ(ensemble.margin(std::array{0.0}), 2.5);
  ensemble.link = TreeEnsemble::Link::kIdentity;
  EXPECT_DOUBLE_EQ(ensemble.probability(std::array{0.0}), 1.0);  // clamped
  ensemble.link = TreeEnsemble::Link::kLogistic;
  EXPECT_NEAR(ensemble.probability(std::array{0.0}),
              1.0 / (1.0 + std::exp(-2.5)), 1e-12);
}

TEST(TreeErrors, EmptyDatasetThrows) {
  Dataset empty;
  TreeConfig config;
  EXPECT_THROW((void)fit_classification_tree(empty, {}, config),
               std::invalid_argument);
  const std::vector<double> g;
  EXPECT_THROW((void)fit_boost_tree(empty, g, g, {}), std::invalid_argument);
}

}  // namespace
