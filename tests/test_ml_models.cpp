#include <gtest/gtest.h>

#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris::ml;

/// Noisy two-cluster problem with a few irrelevant features.
Dataset cluster_dataset(std::size_t n, std::uint64_t seed, double noise = 0.1) {
  polaris::util::Xoshiro256 rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double center = label == 1 ? 0.8 : 0.2;
    data.add({center + rng.uniform(-noise, noise),
              center + rng.uniform(-noise, noise), rng.uniform(),
              rng.uniform()},
             label);
  }
  return data;
}

/// XOR-of-two-binary-features with distractors: requires depth >= 2.
Dataset xor_dataset(std::size_t n, std::uint64_t seed) {
  polaris::util::Xoshiro256 rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.chance(0.5) ? 1.0 : 0.0;
    const double b = rng.chance(0.5) ? 1.0 : 0.0;
    data.add({a, b, rng.uniform()}, (a != b) ? 1 : 0);
  }
  return data;
}

template <typename Model>
double holdout_accuracy(Model& model, const Dataset& data) {
  auto [train, test] = data.split(0.7, 99);
  model.fit(train);
  return evaluate(model, test).accuracy;
}

TEST(RandomForest, SeparatesClusters) {
  auto data = cluster_dataset(600, 1);
  RandomForest model({.trees = 30, .max_depth = 6, .seed = 7});
  EXPECT_GT(holdout_accuracy(model, data), 0.95);
}

TEST(RandomForest, LearnsXor) {
  auto data = xor_dataset(800, 2);
  RandomForest model({.trees = 40, .max_depth = 5, .seed = 3});
  EXPECT_GT(holdout_accuracy(model, data), 0.95);
}

TEST(RandomForest, ProbabilitiesAreAverages) {
  auto data = cluster_dataset(200, 3);
  RandomForest model({.trees = 10, .seed = 1});
  model.fit(data);
  for (std::size_t i = 0; i < 10; ++i) {
    const double p = model.predict_proba(data.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_EQ(model.ensemble().trees.size(), 10u);
  EXPECT_EQ(model.ensemble().link, TreeEnsemble::Link::kIdentity);
}

TEST(Gbdt, SeparatesClusters) {
  auto data = cluster_dataset(600, 4);
  Gbdt model({.rounds = 60, .max_depth = 3, .learning_rate = 0.3});
  EXPECT_GT(holdout_accuracy(model, data), 0.95);
}

TEST(Gbdt, LearnsXor) {
  auto data = xor_dataset(800, 5);
  Gbdt model({.rounds = 80, .max_depth = 3, .learning_rate = 0.3});
  EXPECT_GT(holdout_accuracy(model, data), 0.95);
}

TEST(Gbdt, BaseScoreIsPriorLogOdds) {
  Dataset data;
  for (int i = 0; i < 90; ++i) data.add({0.0}, 1);
  for (int i = 0; i < 10; ++i) data.add({1.0}, 0);
  Gbdt model({.rounds = 1, .learning_rate = 0.0});
  model.fit(data);
  EXPECT_NEAR(model.ensemble().base, std::log(0.9 / 0.1), 1e-9);
}

TEST(Gbdt, MoreRoundsImproveTrainingFit) {
  auto data = xor_dataset(400, 6);
  Gbdt small({.rounds = 2, .max_depth = 2, .learning_rate = 0.1});
  Gbdt large({.rounds = 100, .max_depth = 2, .learning_rate = 0.1});
  small.fit(data);
  large.fit(data);
  EXPECT_GE(evaluate(large, data).accuracy, evaluate(small, data).accuracy);
}

TEST(AdaBoost, SeparatesClusters) {
  auto data = cluster_dataset(600, 7);
  AdaBoost model({.rounds = 40, .max_depth = 2, .learning_rate = 0.5});
  EXPECT_GT(holdout_accuracy(model, data), 0.95);
}

TEST(AdaBoost, LearnsXor) {
  auto data = xor_dataset(800, 8);
  AdaBoost model({.rounds = 60, .max_depth = 2, .learning_rate = 0.5});
  EXPECT_GT(holdout_accuracy(model, data), 0.95);
}

TEST(AdaBoost, StopsOnUnlearnableData) {
  // A constant feature with perfectly balanced labels: the stump cannot do
  // better than chance (err = 0.5 exactly), so boosting must halt at once.
  Dataset data;
  for (int i = 0; i < 300; ++i) data.add({0.0}, i % 2);
  AdaBoost model({.rounds = 50, .max_depth = 1});
  model.fit(data);
  EXPECT_TRUE(model.ensemble().trees.empty());
  // The untrained-ish model still predicts a valid probability.
  EXPECT_NEAR(model.predict_proba(std::array{0.0}), 0.5, 0.01);
}

TEST(AdaBoost, MarginIsWeightedVote) {
  auto data = cluster_dataset(300, 12);
  AdaBoost model({.rounds = 15, .max_depth = 2});
  model.fit(data);
  const auto& ensemble = model.ensemble();
  ASSERT_FALSE(ensemble.trees.empty());
  // Manual margin = base + sum(w * tree(x)) must match predict_margin.
  const auto x = data.row(0);
  double manual = ensemble.base;
  for (const auto& wt : ensemble.trees) manual += wt.weight * wt.tree.predict(x);
  EXPECT_NEAR(manual, model.predict_margin(x), 1e-12);
}

TEST(Models, DeterministicForFixedSeed) {
  auto data = cluster_dataset(300, 13);
  RandomForest a({.trees = 10, .seed = 5}), b({.trees = 10, .seed = 5});
  a.fit(data);
  b.fit(data);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(data.row(i)), b.predict_proba(data.row(i)));
  }
}

TEST(Models, ClassWeightsCounterImbalance) {
  // 95/5 imbalance; with balance weights the boosted model must still
  // recall most minority samples.
  polaris::util::Xoshiro256 rng(15);
  Dataset data;
  for (int i = 0; i < 950; ++i) data.add({rng.uniform(0.0, 0.6)}, 0);
  for (int i = 0; i < 50; ++i) data.add({rng.uniform(0.4, 1.0)}, 1);
  data.apply_class_balance_weights();
  Gbdt model({.rounds = 40, .max_depth = 2, .learning_rate = 0.3});
  model.fit(data);
  const auto metrics = evaluate(model, data);
  EXPECT_GT(metrics.recall, 0.6);
}

}  // namespace
