// The serve daemon end to end over real Unix-domain sockets: served
// audit/mask/score responses must be bit-identical to the offline library
// path at every thread count, the result cache must replay identical
// bytes, malformed frames must be answered (not dropped) without killing
// the daemon, and a stop request must drain in-flight work cleanly.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "core/result_cache.hpp"
#include "netlist/verilog.hpp"
#include "obs/obs.hpp"
#include "server/client.hpp"
#include "server/flight_recorder.hpp"
#include "server/server.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

core::PolarisConfig train_config() {
  core::PolarisConfig config;
  config.mask_size = 30;
  config.iterations = 2;
  config.locality = 5;
  config.tvla.traces = 512;
  config.tvla.noise_std_fj = 1.0;
  config.model_rounds = 40;
  config.seed = 3;
  return config;
}

/// The audit request config the tests reuse (thread knobs never change
/// results, so every comparison below is exact).
core::PolarisConfig audit_config() {
  core::PolarisConfig config = train_config();
  config.tvla.traces = 512;
  config.seed = 7;
  config.tvla.seed = 7;
  return config;
}

std::string unique_socket_path() {
  // Keep it short: sun_path caps out near 108 characters, and gtest's
  // TempDir can be long.
  static std::atomic<int> counter{0};
  return "/tmp/polaris_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

void expect_reports_bit_identical(const tvla::LeakageReport& a,
                                  const tvla::LeakageReport& b) {
  ASSERT_EQ(a.t_values().size(), b.t_values().size());
  for (std::size_t g = 0; g < a.t_values().size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.t_values()[g]),
              std::bit_cast<std::uint64_t>(b.t_values()[g]))
        << "group " << g;
    EXPECT_EQ(a.measured(static_cast<netlist::GateId>(g)),
              b.measured(static_cast<netlist::GateId>(g)));
  }
  EXPECT_EQ(a.threshold(), b.threshold());
}

/// Raw connected socket for the malformed-frame tests (the Client class
/// only ever emits well-formed frames).
int raw_connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// A complete ping request frame (header + payload) as raw bytes.
std::vector<std::uint8_t> ping_frame_bytes() {
  const auto payload = server::encode_ping_request();
  std::vector<std::uint8_t> frame(server::kFrameHeaderSize + payload.size());
  std::memcpy(frame.data(), server::kFrameMagic, 4);
  for (int i = 0; i < 4; ++i) {
    frame[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(server::kProtocolVersion >> (8 * i));
  }
  const std::uint64_t length = payload.size();
  for (int i = 0; i < 8; ++i) {
    frame[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(length >> (8 * i));
  }
  std::memcpy(frame.data() + server::kFrameHeaderSize, payload.data(),
              payload.size());
  return frame;
}

/// Reads the server's response on a raw socket and returns its status.
server::Status read_status(int fd) {
  std::vector<std::uint8_t> payload;
  const auto result =
      server::read_frame(fd, server::kDefaultMaxFrame, payload);
  EXPECT_EQ(result, server::FrameResult::kFrame);
  return server::decode_response(std::move(payload)).status;
}

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto* polaris = new core::Polaris(train_config());
    std::vector<circuits::Design> training;
    {
      circuits::Design d{"sbox1", circuits::make_aes_sbox_layer(1), {}};
      d.roles.assign(d.netlist.primary_inputs().size(),
                     circuits::InputRole::kData);
      training.push_back(std::move(d));
    }
    {
      circuits::Design d{"mult6", circuits::make_multiplier(6), {}};
      d.roles.assign(d.netlist.primary_inputs().size(),
                     circuits::InputRole::kData);
      training.push_back(std::move(d));
    }
    (void)polaris->train(training, lib());
    bundle_path_ = new std::string(::testing::TempDir() + "serve_test.plb");
    polaris->save_bundle(*bundle_path_);
    polaris_ = polaris;
  }
  static void TearDownTestSuite() {
    std::remove(bundle_path_->c_str());
    delete bundle_path_;
    delete polaris_;
    bundle_path_ = nullptr;
    polaris_ = nullptr;
  }

  static std::unique_ptr<server::Server> make_server(
      std::size_t threads, std::size_t max_frame = server::kDefaultMaxFrame) {
    server::ServerOptions options;
    options.socket_path = unique_socket_path();
    options.bundle_path = *bundle_path_;
    options.threads = threads;
    options.max_frame = max_frame;
    auto daemon = std::make_unique<server::Server>(options);
    daemon->start();
    return daemon;
  }

  static core::Polaris* polaris_;
  static std::string* bundle_path_;
};

core::Polaris* ServerTest::polaris_ = nullptr;
std::string* ServerTest::bundle_path_ = nullptr;

// --- bit-identity vs the offline path ---------------------------------------

TEST_F(ServerTest, AuditIsBitIdenticalToOfflineAtEveryThreadCount) {
  const auto config = audit_config();
  const auto design = circuits::load_design("des3", 0.3);
  const auto expected = tvla::run_fixed_vs_random(
      design.netlist, lib(), core::tvla_config_for(config, design));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    auto daemon = make_server(threads);
    server::Client client(daemon->socket_path());
    server::AuditRequest request;
    request.design = "des3";
    request.scale = 0.3;
    request.config = config;
    const auto reply = client.audit(request);
    EXPECT_EQ(reply.design_name, "des3");
    EXPECT_EQ(reply.gate_count, design.netlist.gate_count());
    EXPECT_FALSE(reply.cache_hit);
    expect_reports_bit_identical(reply.report, expected);
    daemon->request_stop();
    daemon->wait();
  }
}

TEST_F(ServerTest, MaskMatchesOfflinePathAndCachesByteIdentically) {
  const auto design = circuits::load_design("des3", 0.3);
  const auto offline =
      polaris_->mask_design(design, lib(), 20, core::InferenceMode::kModel);
  const std::string offline_verilog = netlist::to_verilog(offline.masked);

  auto daemon = make_server(2);
  server::Client client(daemon->socket_path());
  server::MaskRequest request;
  request.design = "des3";
  request.scale = 0.3;
  request.mask_size = 20;
  const auto first = client.mask(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.selected, offline.selected);
  EXPECT_EQ(first.verilog, offline_verilog);
  EXPECT_EQ(first.masked_gate_count, offline.masked.gate_count());

  // Second identical request: served from cache, byte-identical replay
  // (including the recorded seconds), and the daemon reports the hit.
  const auto second = client.mask(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.verilog, first.verilog);
  EXPECT_EQ(second.selected, first.selected);
  EXPECT_EQ(second.seconds, first.seconds);
  EXPECT_GE(daemon->stats().cache_hits, 1u);
}

TEST_F(ServerTest, ScoreMatchesOfflineScoreGates) {
  const auto design = circuits::load_design("square", 0.3);
  const auto expected =
      polaris_->score_gates(design, core::InferenceMode::kModel);

  auto daemon = make_server(2);
  server::Client client(daemon->socket_path());
  server::ScoreRequest request;
  request.design = "square";
  request.scale = 0.3;
  const auto reply = client.score(request);
  ASSERT_EQ(reply.scores.size(), expected.size());
  for (std::size_t g = 0; g < expected.size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reply.scores[g]),
              std::bit_cast<std::uint64_t>(expected[g]))
        << "gate " << g;
  }
}

TEST_F(ServerTest, AuditCacheHitReplaysBitIdenticalReport) {
  auto daemon = make_server(2);
  server::Client client(daemon->socket_path());
  server::AuditRequest request;
  request.design = "voter";
  request.scale = 0.3;
  request.config = audit_config();
  const auto miss = client.audit(request);
  EXPECT_FALSE(miss.cache_hit);
  const auto hit = client.audit(request);
  EXPECT_TRUE(hit.cache_hit);
  expect_reports_bit_identical(hit.report, miss.report);

  // A different seed is a different key: no false sharing.
  server::AuditRequest other = request;
  other.config.tvla.seed = 99;
  EXPECT_FALSE(client.audit(other).cache_hit);
}

// --- observability ----------------------------------------------------------

TEST_F(ServerTest, PingCarriesRuntimeIdentity) {
  auto daemon = make_server(1);
  server::Client client(daemon->socket_path());
  const auto reply = client.ping();
  const auto info = obs::runtime_info();
  EXPECT_EQ(reply.build_type, info.build_type);
  EXPECT_EQ(reply.simd, info.simd);
  EXPECT_EQ(reply.lane_words, info.lane_words);
}

TEST_F(ServerTest, StatsRoundTripTracksCacheHitsAndRequestLatency) {
  auto daemon = make_server(2);
  server::Client client(daemon->socket_path());

  const auto before = client.stats();
  EXPECT_EQ(before.protocol, server::kProtocolVersion);
  EXPECT_FALSE(before.build_type.empty());
  EXPECT_FALSE(before.simd.empty());
  EXPECT_GE(before.lane_words, 1u);

  // The registry is process-global and other tests in this binary record
  // into it, so every assertion below is on DELTAS between stats calls.
  server::AuditRequest request;
  request.design = "square";
  request.scale = 0.3;
  request.config = audit_config();
  request.config.tvla.seed = 4242;  // fresh key: the first audit must miss
  request.config.seed = 4242;
  EXPECT_FALSE(client.audit(request).cache_hit);
  const auto after_miss = client.stats();
  EXPECT_TRUE(client.audit(request).cache_hit);
  const auto after_hit = client.stats();

  EXPECT_GE(after_miss.snapshot.counter_value("cache.misses"),
            before.snapshot.counter_value("cache.misses") + 1);
  EXPECT_GE(after_hit.snapshot.counter_value("cache.hits"),
            after_miss.snapshot.counter_value("cache.hits") + 1);
  EXPECT_GT(after_hit.requests_served, before.requests_served);
  EXPECT_GE(after_hit.snapshot.counter_value("server.frames_in"),
            before.snapshot.counter_value("server.frames_in") + 4);

  // Both audits (hit and miss) landed in the daemon's request histogram.
  const auto* hist = after_hit.snapshot.find_histogram("server.audit_us");
  ASSERT_NE(hist, nullptr);
  const auto* hist_before = before.snapshot.find_histogram("server.audit_us");
  const std::uint64_t count_before =
      hist_before == nullptr ? 0 : hist_before->count;
  EXPECT_GE(hist->count, count_before + 2);
  obs::HistogramSnapshot delta = *hist;
  if (hist_before != nullptr) delta.subtract(*hist_before);
  EXPECT_GE(delta.count, 2u);
  EXPECT_GT(delta.percentile(0.95), 0.0);
}

// --- concurrency ------------------------------------------------------------

TEST_F(ServerTest, ConcurrentClientsGetCorrectAnswers) {
  // N clients hammer mixed requests at once; every response must carry the
  // same bits the offline path computes, even though all campaigns' shards
  // interleave in one scheduler queue.
  const auto config = audit_config();
  const char* kDesigns[] = {"des3", "square", "voter", "arbiter"};
  std::vector<tvla::LeakageReport> expected;
  for (const char* name : kDesigns) {
    const auto design = circuits::load_design(name, 0.25);
    expected.push_back(tvla::run_fixed_vs_random(
        design.netlist, lib(), core::tvla_config_for(config, design)));
  }

  auto daemon = make_server(4);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      try {
        server::Client client(daemon->socket_path());
        (void)client.ping();
        const std::size_t which = static_cast<std::size_t>(c) % 4;
        server::AuditRequest request;
        request.design = kDesigns[which];
        request.scale = 0.25;
        request.config = config;
        const auto reply = client.audit(request);
        if (reply.report.t_values() != expected[which].t_values()) {
          failures.fetch_add(1);
        }
        server::ScoreRequest score;
        score.design = kDesigns[which];
        score.scale = 0.25;
        if (client.score(score).scores.empty()) failures.fetch_add(1);
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(daemon->stats().connections, 8u);
}

// --- malformed frames -------------------------------------------------------

TEST_F(ServerTest, EveryTruncatedFramePrefixLeavesTheServerServing) {
  auto daemon = make_server(1);
  const auto frame = ping_frame_bytes();
  // The serialize truncation-sweep idiom, applied to the wire: a client
  // that dies after ANY prefix of a frame must not take the daemon down.
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const int fd = raw_connect(daemon->socket_path());
    ASSERT_GE(fd, 0) << "daemon gone after prefix of " << keep << " bytes";
    if (keep > 0) send_all(fd, frame.data(), keep);
    ::close(fd);
  }
  // The daemon must still answer a well-formed request.
  server::Client client(daemon->socket_path());
  EXPECT_EQ(client.ping().protocol, server::kProtocolVersion);
}

TEST_F(ServerTest, WrongMagicGetsStructuredErrorFrame) {
  auto daemon = make_server(1);
  auto frame = ping_frame_bytes();
  frame[0] = 'X';
  const int fd = raw_connect(daemon->socket_path());
  ASSERT_GE(fd, 0);
  send_all(fd, frame.data(), frame.size());
  EXPECT_EQ(read_status(fd), server::Status::kBadMagic);
  ::close(fd);
}

TEST_F(ServerTest, FutureProtocolVersionGetsStructuredErrorFrame) {
  auto daemon = make_server(1);
  auto frame = ping_frame_bytes();
  frame[4] = static_cast<std::uint8_t>(server::kProtocolVersion + 1);
  const int fd = raw_connect(daemon->socket_path());
  ASSERT_GE(fd, 0);
  send_all(fd, frame.data(), frame.size());
  EXPECT_EQ(read_status(fd), server::Status::kBadVersion);
  ::close(fd);
}

TEST_F(ServerTest, OversizedFrameRejectedBeforeAllocation) {
  // --max-frame 1024; the header claims 1 GiB. The structured rejection
  // must arrive BEFORE any payload is read or allocated.
  auto daemon = make_server(1, /*max_frame=*/1024);
  auto frame = ping_frame_bytes();
  const std::uint64_t huge = std::uint64_t{1} << 30;
  for (int i = 0; i < 8; ++i) {
    frame[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  const int fd = raw_connect(daemon->socket_path());
  ASSERT_GE(fd, 0);
  send_all(fd, frame.data(), server::kFrameHeaderSize);  // header only
  EXPECT_EQ(read_status(fd), server::Status::kTooLarge);
  ::close(fd);
}

TEST_F(ServerTest, CorruptPayloadAnsweredAndConnectionStaysUsable) {
  auto daemon = make_server(1);
  auto frame = ping_frame_bytes();
  frame[server::kFrameHeaderSize + 5] ^= 0x40;  // flip one payload byte
  const int fd = raw_connect(daemon->socket_path());
  ASSERT_GE(fd, 0);
  send_all(fd, frame.data(), frame.size());
  // The framing was intact (only the archive inside is corrupt), so the
  // error is answered AND the connection keeps serving.
  EXPECT_EQ(read_status(fd), server::Status::kBadPayload);
  const auto good = ping_frame_bytes();
  send_all(fd, good.data(), good.size());
  EXPECT_EQ(read_status(fd), server::Status::kOk);
  ::close(fd);
}

TEST_F(ServerTest, BadRequestsGetBadRequestStatus) {
  auto daemon = make_server(1);
  server::Client client(daemon->socket_path());
  server::AuditRequest request;
  request.design = "no_such_design";
  request.config = audit_config();
  try {
    (void)client.audit(request);
    FAIL() << "unknown design accepted";
  } catch (const server::ServerError& error) {
    EXPECT_EQ(error.status, server::Status::kBadRequest);
    EXPECT_NE(std::string(error.what()).find("no_such_design"),
              std::string::npos);
  }
  // The connection survives the rejected request.
  EXPECT_EQ(client.ping().protocol, server::kProtocolVersion);
}

// --- shutdown ---------------------------------------------------------------

TEST_F(ServerTest, StopMidRequestDeliversTheInFlightResponse) {
  auto daemon = make_server(2);
  const auto socket_path = daemon->socket_path();

  std::atomic<bool> audit_ok{false};
  std::thread in_flight([&] {
    try {
      server::Client client(socket_path);
      server::AuditRequest request;
      request.design = "des3";
      request.scale = 1.0;
      request.config = audit_config();
      request.config.tvla.traces = 32768;  // long enough to straddle the stop
      request.config.tvla.seed = 11;
      const auto reply = client.audit(request);
      audit_ok.store(reply.report.group_count() > 0);
    } catch (const std::exception&) {
      audit_ok.store(false);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  daemon->request_stop();
  daemon->wait();
  in_flight.join();

  // Graceful drain: the in-flight request completed and its response was
  // delivered; the socket file is gone afterwards.
  EXPECT_TRUE(audit_ok.load());
  struct stat status_buffer{};
  EXPECT_NE(::stat(socket_path.c_str(), &status_buffer), 0);
}

TEST_F(ServerTest, StalledMidFramePeerCannotBlockShutdown) {
  auto daemon = make_server(1);
  const int fd = raw_connect(daemon->socket_path());
  ASSERT_GE(fd, 0);
  const auto frame = ping_frame_bytes();
  send_all(fd, frame.data(), 8);  // half a header, then go silent
  // Give the handler time to enter the mid-frame read before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  daemon->request_stop();
  daemon->wait();  // must return despite the peer never finishing its frame
  ::close(fd);
}

TEST_F(ServerTest, ClientVanishingBeforeItsResponseDoesNotKillTheDaemon) {
  auto daemon = make_server(1);
  const int fd = raw_connect(daemon->socket_path());
  ASSERT_GE(fd, 0);
  const auto frame = ping_frame_bytes();
  send_all(fd, frame.data(), frame.size());
  ::close(fd);  // peer gone before the response write - must not SIGPIPE
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server::Client client(daemon->socket_path());
  EXPECT_EQ(client.ping().protocol, server::kProtocolVersion);
}

TEST_F(ServerTest, SecondDaemonOnLiveSocketIsRejected) {
  auto daemon = make_server(1);
  server::ServerOptions options;
  options.socket_path = daemon->socket_path();
  options.bundle_path = *bundle_path_;
  EXPECT_THROW(server::Server{options}, std::runtime_error);
  // The incumbent daemon is unharmed by the rejected newcomer.
  server::Client client(daemon->socket_path());
  EXPECT_EQ(client.ping().protocol, server::kProtocolVersion);
}

TEST_F(ServerTest, ClientShutdownVerbDrainsTheDaemon) {
  auto daemon = make_server(1);
  const auto socket_path = daemon->socket_path();
  {
    server::Client client(socket_path);
    client.shutdown_server();
  }
  daemon->wait();
  const auto stats = daemon->stats();
  EXPECT_GE(stats.requests_served, 1u);
  EXPECT_LT(raw_connect(socket_path), 0);  // nothing listens anymore
}

// --- protocol codecs (no sockets) -------------------------------------------

TEST(ServeProtocol, RequestsRoundTrip) {
  server::AuditRequest audit;
  audit.design = "des3";
  audit.scale = 0.5;
  audit.config = audit_config();
  {
    serialize::Reader in(server::encode_audit_request(audit));
    EXPECT_EQ(server::decode_request_kind(in), server::RequestKind::kAudit);
    const auto back = server::decode_audit_request(in);
    EXPECT_EQ(back.design, audit.design);
    EXPECT_EQ(back.scale, audit.scale);
    EXPECT_EQ(core::config_fingerprint(back.config),
              core::config_fingerprint(audit.config));
  }
  server::MaskRequest mask;
  mask.design = "square";
  mask.mask_size = 44;
  mask.mode = core::InferenceMode::kModelPlusRules;
  mask.verify = true;
  {
    serialize::Reader in(server::encode_mask_request(mask));
    EXPECT_EQ(server::decode_request_kind(in), server::RequestKind::kMask);
    const auto back = server::decode_mask_request(in);
    EXPECT_EQ(back.design, mask.design);
    EXPECT_EQ(back.mask_size, mask.mask_size);
    EXPECT_EQ(back.mode, mask.mode);
    EXPECT_TRUE(back.verify);
  }
}

TEST(ServeProtocol, ResponsesRoundTripIncludingReports) {
  server::AuditReply reply;
  reply.design_name = "d";
  reply.gate_count = 12;
  reply.traces = 512;
  reply.report = tvla::LeakageReport({5.5, -0.25, 0.0}, {true, true, false},
                                     4.5);
  const auto body = server::encode_audit_reply(reply);
  const auto payload =
      server::encode_response(server::Status::kOk, "", true, body);
  auto response = server::decode_response(payload);
  EXPECT_EQ(response.status, server::Status::kOk);
  EXPECT_TRUE(response.cache_hit);
  const auto back = server::decode_audit_reply(response.body);
  EXPECT_EQ(back.design_name, "d");
  expect_reports_bit_identical(back.report, reply.report);
}

TEST(ServeProtocol, StatsReplyRoundTripsRegistrySnapshot) {
  server::StatsReply reply;
  reply.model_name = "adaboost";
  reply.config_fingerprint = 0x1234abcd;
  reply.build_type = "release";
  reply.simd = "avx2";
  reply.lane_words = 4;
  reply.requests_served = 7;
  reply.connections = 3;
  obs::Registry registry;  // local: the wire format, not the global state
  registry.counter("cache.hits").add(41);
  auto& histogram = registry.histogram("server.audit_us");
  histogram.record(5);
  histogram.record(100);
  histogram.record(100000);
  reply.snapshot = registry.snapshot();

  const auto back =
      server::decode_stats_reply(server::encode_stats_reply(reply));
  EXPECT_EQ(back.protocol, server::kProtocolVersion);
  EXPECT_EQ(back.model_name, "adaboost");
  EXPECT_EQ(back.config_fingerprint, 0x1234abcdu);
  EXPECT_EQ(back.build_type, "release");
  EXPECT_EQ(back.simd, "avx2");
  EXPECT_EQ(back.lane_words, 4u);
  EXPECT_EQ(back.requests_served, 7u);
  EXPECT_EQ(back.connections, 3u);
  EXPECT_EQ(back.snapshot.counter_value("cache.hits"), 41u);
  const auto* hist = back.snapshot.find_histogram("server.audit_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum, 100105u);
  EXPECT_EQ(hist->buckets, reply.snapshot.histograms[0].buckets);
}

TEST(ResultCache, BytesTrackResidentBodiesAcrossRefreshAndEviction) {
  core::ResultCache cache(2);
  const auto body_of = [](std::size_t size) {
    return std::make_shared<const std::vector<std::uint8_t>>(size, 0xAB);
  };
  cache.put(1, body_of(100));
  EXPECT_EQ(cache.bytes(), 100u);

  // Refresh with a different size replaces, not accumulates.
  cache.put(1, body_of(60));
  EXPECT_EQ(cache.bytes(), 60u);
  EXPECT_EQ(cache.size(), 1u);

  cache.put(2, body_of(40));
  EXPECT_EQ(cache.bytes(), 100u);

  // Capacity 2: inserting a third evicts the oldest (key 1, 60 bytes).
  cache.put(3, body_of(7));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 47u);
  EXPECT_EQ(cache.get(1), nullptr);
  ASSERT_NE(cache.get(2), nullptr);
  ASSERT_NE(cache.get(3), nullptr);
}

TEST(ServeProtocol, AuditReplyRoundTripsEarlyStopFields) {
  server::AuditReply reply;
  reply.design_name = "d";
  reply.traces = 8192;
  reply.report = tvla::LeakageReport({6.0}, {true}, 4.5);
  reply.traces_used = 1024;
  reply.early_stopped = true;
  const auto back = server::decode_audit_reply(server::encode_audit_reply(reply));
  EXPECT_EQ(back.traces_used, 1024u);
  EXPECT_TRUE(back.early_stopped);
  EXPECT_EQ(back.report.traces_used(), 1024u);
  EXPECT_TRUE(back.report.early_stopped());

  // Fixed-budget replies (traces_used 0) keep the pre-budget byte layout.
  server::AuditReply fixed = reply;
  fixed.traces_used = 0;
  fixed.early_stopped = false;
  const auto fixed_bytes = server::encode_audit_reply(fixed);
  EXPECT_LT(fixed_bytes.size(), server::encode_audit_reply(reply).size());
  const auto fixed_back = server::decode_audit_reply(fixed_bytes);
  EXPECT_EQ(fixed_back.traces_used, 0u);
  EXPECT_FALSE(fixed_back.early_stopped);
}

TEST(ServeProtocol, AuditPartialRoundTripsAndIsDistinguishable) {
  server::AuditPartial partial;
  partial.traces_done = 2048;
  partial.traces_total = 8192;
  partial.report = tvla::LeakageReport({3.25, -1.5}, {true, true}, 4.5);
  const auto body = server::encode_audit_partial(partial);
  EXPECT_TRUE(server::is_audit_partial(body));

  const auto back = server::decode_audit_partial(body);
  EXPECT_EQ(back.traces_done, 2048u);
  EXPECT_EQ(back.traces_total, 8192u);
  expect_reports_bit_identical(back.report, partial.report);

  // A final AUDS body must NOT look like a checkpoint frame.
  server::AuditReply reply;
  reply.report = tvla::LeakageReport({1.0}, {true}, 4.5);
  EXPECT_FALSE(server::is_audit_partial(server::encode_audit_reply(reply)));
}

TEST_F(ServerTest, StreamingAuditMatchesNonStreamingByteForByte) {
  auto config = audit_config();
  config.tvla.traces = 2048;
  config.tvla.budget.enabled = true;
  config.tvla.budget.min_traces = 256;

  auto daemon = make_server(2);
  server::AuditRequest request;
  request.design = "des3";
  request.scale = 0.3;
  request.config = config;

  std::vector<server::AuditPartial> partials;
  server::Client streaming(daemon->socket_path());
  const auto streamed = streaming.audit_stream(
      request,
      [&](const server::AuditPartial& partial) { partials.push_back(partial); });
  EXPECT_FALSE(streamed.cache_hit);
  for (std::size_t i = 1; i < partials.size(); ++i) {
    EXPECT_LT(partials[i - 1].traces_done, partials[i].traces_done);
  }
  for (const auto& partial : partials) {
    EXPECT_EQ(partial.traces_total, 2048u);
    EXPECT_LE(partial.traces_done, 2048u);
  }

  // The same request through the plain verb: a cache hit (streaming and
  // non-streaming share one key) and an identical reply.
  server::Client plain(daemon->socket_path());
  const auto direct = plain.audit(request);
  EXPECT_TRUE(direct.cache_hit);
  EXPECT_EQ(direct.traces_used, streamed.traces_used);
  EXPECT_EQ(direct.early_stopped, streamed.early_stopped);
  expect_reports_bit_identical(direct.report, streamed.report);

  // A second streaming request replays the cache: zero partial frames.
  std::size_t replayed_partials = 0;
  server::Client cached(daemon->socket_path());
  const auto replay = cached.audit_stream(
      request, [&](const server::AuditPartial&) { ++replayed_partials; });
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_EQ(replayed_partials, 0u);
  expect_reports_bit_identical(replay.report, streamed.report);

  daemon->request_stop();
  daemon->wait();
}

TEST_F(ServerTest, StreamingAuditMatchesOfflineEarlyStop) {
  auto config = audit_config();
  config.tvla.traces = 2048;
  config.tvla.budget.enabled = true;
  config.tvla.budget.min_traces = 256;
  const auto design = circuits::load_design("des3", 0.3);
  const auto offline = tvla::run_fixed_vs_random(
      design.netlist, lib(), core::tvla_config_for(config, design));

  auto daemon = make_server(4);
  server::Client client(daemon->socket_path());
  server::AuditRequest request;
  request.design = "des3";
  request.scale = 0.3;
  request.config = config;
  const auto reply =
      client.audit_stream(request, [](const server::AuditPartial&) {});
  EXPECT_EQ(reply.traces_used, offline.traces_used());
  EXPECT_EQ(reply.early_stopped, offline.early_stopped());
  expect_reports_bit_identical(reply.report, offline);

  daemon->request_stop();
  daemon->wait();
}

// --- live-operations status: codec, recorder, end-to-end --------------------

TEST(ServeProtocol, StatusRequestRoundTripsAndKindsHaveNames) {
  serialize::Reader in(server::encode_status_request());
  EXPECT_EQ(server::decode_request_kind(in), server::RequestKind::kStatus);
  EXPECT_STREQ(server::request_kind_name(server::RequestKind::kStatus),
               "status");
  EXPECT_STREQ(server::request_kind_name(server::RequestKind::kAudit),
               "audit");
  EXPECT_STREQ(server::request_kind_name(server::RequestKind::kPing), "ping");
}

TEST(ServeProtocol, StatusReplyRoundTripsAllThreeTables) {
  server::StatusReply reply;
  reply.model_name = "adaboost";
  reply.requests_served = 42;
  reply.connections_active = 2;
  reply.connections_total = 9;
  reply.uptime_ms = 123456;
  reply.sample_interval_ms = 1000;
  reply.samples = 123;
  {
    server::InflightEntry entry;
    entry.kind = static_cast<std::uint8_t>(server::RequestKind::kAudit);
    entry.bytes = 1024;
    entry.age_us = 250000;
    reply.inflight.push_back(entry);
  }
  {
    engine::CampaignProgress row;
    row.label = "des3";
    row.sequence = 7;
    row.shards_done = 5;
    row.shards_total = 12;
    row.queue_position = 1;
    row.age_us = 99;
    row.stopped = true;
    reply.campaigns.push_back(row);
    row.label = "";  // unnamed campaigns stay representable
    row.stopped = false;
    reply.campaigns.push_back(row);
  }
  {
    server::FlightRecordEntry record;
    record.kind = static_cast<std::uint8_t>(server::RequestKind::kMask);
    record.status = static_cast<std::uint8_t>(server::Status::kOk);
    record.cache_hit = true;
    record.bytes = 77;
    record.duration_us = 4321;
    record.age_us = 5;
    reply.recent.push_back(record);
  }

  const auto back =
      server::decode_status_reply(server::encode_status_reply(reply));
  EXPECT_EQ(back.protocol, server::kProtocolVersion);
  EXPECT_EQ(back.model_name, "adaboost");
  EXPECT_EQ(back.requests_served, 42u);
  EXPECT_EQ(back.connections_active, 2u);
  EXPECT_EQ(back.connections_total, 9u);
  EXPECT_EQ(back.uptime_ms, 123456u);
  EXPECT_EQ(back.sample_interval_ms, 1000u);
  EXPECT_EQ(back.samples, 123u);
  ASSERT_EQ(back.inflight.size(), 1u);
  EXPECT_EQ(back.inflight[0].kind,
            static_cast<std::uint8_t>(server::RequestKind::kAudit));
  EXPECT_EQ(back.inflight[0].bytes, 1024u);
  EXPECT_EQ(back.inflight[0].age_us, 250000u);
  ASSERT_EQ(back.campaigns.size(), 2u);
  EXPECT_EQ(back.campaigns[0].label, "des3");
  EXPECT_EQ(back.campaigns[0].sequence, 7u);
  EXPECT_EQ(back.campaigns[0].shards_done, 5u);
  EXPECT_EQ(back.campaigns[0].shards_total, 12u);
  EXPECT_EQ(back.campaigns[0].queue_position, 1u);
  EXPECT_EQ(back.campaigns[0].age_us, 99u);
  EXPECT_TRUE(back.campaigns[0].stopped);
  EXPECT_EQ(back.campaigns[1].label, "");
  EXPECT_FALSE(back.campaigns[1].stopped);
  ASSERT_EQ(back.recent.size(), 1u);
  EXPECT_EQ(back.recent[0].kind,
            static_cast<std::uint8_t>(server::RequestKind::kMask));
  EXPECT_EQ(back.recent[0].status,
            static_cast<std::uint8_t>(server::Status::kOk));
  EXPECT_TRUE(back.recent[0].cache_hit);
  EXPECT_EQ(back.recent[0].bytes, 77u);
  EXPECT_EQ(back.recent[0].duration_us, 4321u);
  EXPECT_EQ(back.recent[0].age_us, 5u);
}

TEST(ServeProtocol, StatusReplyRoundTripsWorkerFleetHealth) {
  server::StatusReply reply;
  reply.model_name = "adaboost";
  {
    server::WorkerHealthEntry worker;
    worker.endpoint = "tcp:10.0.0.7:9000";
    worker.alive = true;
    worker.inflight = 3;
    worker.shards_done = 128;
    worker.bytes_out = 4096;
    worker.bytes_in = 1 << 20;
    worker.resends = 0;
    reply.workers.push_back(worker);
    worker.endpoint = "tcp:10.0.0.8:9000";
    worker.alive = false;
    worker.resends = 12;
    reply.workers.push_back(worker);
  }
  const auto back =
      server::decode_status_reply(server::encode_status_reply(reply));
  ASSERT_EQ(back.workers.size(), 2u);
  EXPECT_EQ(back.workers[0].endpoint, "tcp:10.0.0.7:9000");
  EXPECT_TRUE(back.workers[0].alive);
  EXPECT_EQ(back.workers[0].inflight, 3u);
  EXPECT_EQ(back.workers[0].shards_done, 128u);
  EXPECT_EQ(back.workers[0].bytes_out, 4096u);
  EXPECT_EQ(back.workers[0].bytes_in, std::uint64_t{1} << 20);
  EXPECT_FALSE(back.workers[1].alive);
  EXPECT_EQ(back.workers[1].resends, 12u);

  // A workerless daemon's reply omits the fleet chunk entirely: its status
  // body stays byte-identical to the pre-distributed wire format.
  server::StatusReply plain;
  plain.model_name = "adaboost";
  const auto plain_body = server::encode_status_reply(plain);
  EXPECT_LT(plain_body.size(), server::encode_status_reply(reply).size());
  EXPECT_TRUE(server::decode_status_reply(plain_body).workers.empty());
}

TEST(ServeProtocol, EveryTruncatedStatusReplyPrefixFailsCleanly) {
  // The serialize truncation-sweep idiom, applied to the status body: a
  // torn or hostile reply must throw from the decoder, never crash or
  // hand back a half-parsed table.
  server::StatusReply reply;
  reply.model_name = "m";
  server::InflightEntry entry;
  entry.kind = 1;
  entry.bytes = 10;
  reply.inflight.push_back(entry);
  engine::CampaignProgress row;
  row.label = "c";
  row.shards_total = 4;
  reply.campaigns.push_back(row);
  server::FlightRecordEntry record;
  record.kind = 2;
  reply.recent.push_back(record);
  const auto body = server::encode_status_reply(reply);

  for (std::size_t keep = 0; keep < body.size(); ++keep) {
    const std::span<const std::uint8_t> prefix(body.data(), keep);
    EXPECT_THROW((void)server::decode_status_reply(prefix),
                 std::runtime_error)
        << "prefix of " << keep << " bytes parsed";
  }
  // The untruncated body still decodes: the sweep failed for the right
  // reason.
  EXPECT_EQ(server::decode_status_reply(body).model_name, "m");
}

TEST(FlightRecorder, RingEvictsOldestAndListsNewestFirst) {
  server::FlightRecorder recorder(3);
  EXPECT_EQ(recorder.capacity(), 3u);
  EXPECT_TRUE(recorder.recent().empty());
  for (std::uint8_t i = 0; i < 5; ++i) {
    server::FlightRecorder::Record record;
    record.kind = i;
    record.bytes = 10u * i;
    recorder.record(record, "ping");
  }
  EXPECT_EQ(recorder.total_recorded(), 5u);
  const auto recent = recorder.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].kind, 4);  // newest first
  EXPECT_EQ(recent[1].kind, 3);
  EXPECT_EQ(recent[2].kind, 2);
  EXPECT_EQ(recent[0].bytes, 40u);
}

TEST(FlightRecorder, SlowThresholdCountsOnlySlowRequests) {
  auto& slow = obs::Registry::global().counter("server.slow_requests");
  const std::uint64_t before = slow.value();
  server::FlightRecorder recorder(8, /*slow_threshold_us=*/1000);
  server::FlightRecorder::Record record;
  record.kind = 1;
  record.duration_us = 999;  // under threshold: silent
  recorder.record(record, "audit");
  EXPECT_EQ(slow.value(), before);
  record.duration_us = 1000;  // at threshold: logged + counted
  recorder.record(record, "audit");
  EXPECT_EQ(slow.value(), before + 1);
  // Threshold 0 disables the slow path entirely.
  server::FlightRecorder quiet(8, 0);
  record.duration_us = 1u << 30;
  quiet.record(record, "audit");
  EXPECT_EQ(slow.value(), before + 1);
}

TEST_F(ServerTest, StatusReportsInflightCampaignsAndFlightRecorder) {
  auto daemon = make_server(1);  // serial scheduler: the audit takes a while

  server::Client poll(daemon->socket_path());
  const std::uint64_t hits_before =
      poll.stats().snapshot.counter_value("cache.hits");

  core::PolarisConfig config = audit_config();
  config.tvla.traces = 4096;  // long enough to observe mid-flight
  server::AuditRequest request;
  request.design = "des3";
  request.scale = 0.3;
  request.config = config;

  std::thread audit_thread([&daemon, &request] {
    server::Client client(daemon->socket_path());
    const auto reply = client.audit(request);
    EXPECT_FALSE(reply.cache_hit);
  });

  // Poll from a second connection: the audit must show up both as an
  // in-flight request and as a named campaign with monotonic shard
  // progress.
  bool saw_inflight_audit = false;
  bool saw_campaign = false;
  std::uint64_t last_done = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!(saw_inflight_audit && saw_campaign) &&
         std::chrono::steady_clock::now() < deadline) {
    const auto status = poll.status();
    EXPECT_EQ(status.protocol, server::kProtocolVersion);
    EXPECT_GE(status.connections_active, 1u);
    for (const auto& entry : status.inflight) {
      if (entry.kind ==
          static_cast<std::uint8_t>(server::RequestKind::kAudit)) {
        saw_inflight_audit = true;
        EXPECT_GT(entry.bytes, 0u);
      }
    }
    for (const auto& row : status.campaigns) {
      if (row.label != "des3") continue;
      saw_campaign = true;
      EXPECT_FALSE(row.stopped);
      EXPECT_LE(row.shards_done, row.shards_total);
      EXPECT_GE(row.shards_done, last_done);  // monotonic across polls
      last_done = row.shards_done;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  audit_thread.join();
  EXPECT_TRUE(saw_inflight_audit);
  EXPECT_TRUE(saw_campaign);

  // Identical second request: a cache hit, recorded as such.
  {
    server::Client client(daemon->socket_path());
    EXPECT_TRUE(client.audit(request).cache_hit);
  }

  // The flight recorder must hold both completed audits - one miss (with
  // real compute time) and one hit - and its cache_hit flags must agree
  // with the cache.hits counter delta over the same window. The record is
  // deposited after the reply frame is written, so a client can briefly
  // outrun its own record: poll until both appear.
  bool miss_recorded = false;
  bool hit_recorded = false;
  while (!(miss_recorded && hit_recorded) &&
         std::chrono::steady_clock::now() < deadline) {
    miss_recorded = hit_recorded = false;
    for (const auto& record : poll.status().recent) {
      if (record.kind !=
          static_cast<std::uint8_t>(server::RequestKind::kAudit)) {
        continue;
      }
      EXPECT_EQ(record.status, static_cast<std::uint8_t>(server::Status::kOk));
      EXPECT_GT(record.bytes, 0u);
      if (record.cache_hit) {
        hit_recorded = true;
      } else {
        miss_recorded = true;
        EXPECT_GT(record.duration_us, 0u);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(miss_recorded);
  EXPECT_TRUE(hit_recorded);
  const std::uint64_t hits_after =
      poll.stats().snapshot.counter_value("cache.hits");
  EXPECT_EQ(hits_after - hits_before, 1u);

  // The table drains with the work: nothing in flight once the audits are
  // done and this status round-trip is the only live request.
  EXPECT_TRUE(poll.status().campaigns.empty());

  // Uptime flows through stats too (appended STTS field).
  EXPECT_GT(poll.stats().uptime_ms + 1, 0u);  // present and decodable
  daemon->request_stop();
  daemon->wait();
}

// --- TCP transport -----------------------------------------------------------

TEST_F(ServerTest, TcpEndpointServesBitIdenticalAudits) {
  server::ServerOptions options;
  options.socket_path = "tcp:127.0.0.1:0";  // ephemeral port
  options.bundle_path = *bundle_path_;
  options.threads = 2;
  auto daemon = std::make_unique<server::Server>(options);
  daemon->start();
  const std::string endpoint = server::net::to_string(daemon->endpoint());
  ASSERT_NE(endpoint.find("tcp:127.0.0.1:"), std::string::npos);
  ASSERT_NE(daemon->endpoint().port, 0);  // resolved, not the requested 0

  const auto config = audit_config();
  const auto design = circuits::load_design("des3", 0.3);
  const auto expected = tvla::run_fixed_vs_random(
      design.netlist, lib(), core::tvla_config_for(config, design));

  server::Client client(endpoint);
  server::AuditRequest request;
  request.design = "des3";
  request.scale = 0.3;
  request.config = config;
  const auto reply = client.audit(request);
  expect_reports_bit_identical(reply.report, expected);
  daemon->request_stop();
  daemon->wait();
}

TEST_F(ServerTest, TcpTruncatedFramePrefixesLeaveTheServerServing) {
  server::ServerOptions options;
  options.socket_path = "tcp:127.0.0.1:0";
  options.bundle_path = *bundle_path_;
  options.threads = 1;
  auto daemon = std::make_unique<server::Server>(options);
  daemon->start();

  // The same sweep the UDS leg runs: a peer dying after ANY frame prefix
  // must not take the daemon down, on this transport too.
  const auto frame = ping_frame_bytes();
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const int fd = server::net::connect_endpoint(daemon->endpoint());
    ASSERT_GE(fd, 0) << "daemon gone after prefix of " << keep << " bytes";
    if (keep > 0) send_all(fd, frame.data(), keep);
    ::close(fd);
  }
  server::Client client(server::net::to_string(daemon->endpoint()));
  EXPECT_EQ(client.ping().protocol, server::kProtocolVersion);
  daemon->request_stop();
  daemon->wait();
}

TEST_F(ServerTest, TcpCorruptFramesGetStructuredErrorsAndConnectionSurvives) {
  server::ServerOptions options;
  options.socket_path = "tcp:127.0.0.1:0";
  options.bundle_path = *bundle_path_;
  options.threads = 1;
  auto daemon = std::make_unique<server::Server>(options);
  daemon->start();

  {
    auto bad_magic = ping_frame_bytes();
    bad_magic[0] = 'X';
    const int fd = server::net::connect_endpoint(daemon->endpoint());
    ASSERT_GE(fd, 0);
    send_all(fd, bad_magic.data(), bad_magic.size());
    EXPECT_EQ(read_status(fd), server::Status::kBadMagic);
    ::close(fd);
  }
  {
    // Corrupt payload, intact framing: answered AND the connection keeps
    // serving, exactly like the UDS leg.
    auto corrupt = ping_frame_bytes();
    corrupt[server::kFrameHeaderSize + 5] ^= 0x40;
    const int fd = server::net::connect_endpoint(daemon->endpoint());
    ASSERT_GE(fd, 0);
    send_all(fd, corrupt.data(), corrupt.size());
    EXPECT_EQ(read_status(fd), server::Status::kBadPayload);
    const auto good = ping_frame_bytes();
    send_all(fd, good.data(), good.size());
    EXPECT_EQ(read_status(fd), server::Status::kOk);
    ::close(fd);
  }
  daemon->request_stop();
  daemon->wait();
}

TEST(ServeNet, EndpointSpecsParseAndRoundTrip) {
  const auto tcp = server::net::parse_endpoint("tcp:localhost:9000");
  EXPECT_TRUE(tcp.tcp);
  EXPECT_EQ(tcp.host, "localhost");
  EXPECT_EQ(tcp.port, 9000);
  // The bare host:port spelling used by --workers lists.
  const auto bare = server::net::parse_endpoint("10.0.0.7:12345");
  EXPECT_TRUE(bare.tcp);
  EXPECT_EQ(bare.host, "10.0.0.7");
  EXPECT_EQ(bare.port, 12345);
  EXPECT_EQ(server::net::to_string(bare), "tcp:10.0.0.7:12345");
  // Anything else is a UDS path, including paths with colons elsewhere.
  const auto uds = server::net::parse_endpoint("/tmp/polaris.sock");
  EXPECT_FALSE(uds.tcp);
  EXPECT_EQ(uds.path, "/tmp/polaris.sock");
  EXPECT_EQ(server::net::to_string(uds), "/tmp/polaris.sock");
  EXPECT_THROW((void)server::net::parse_endpoint("tcp:host:99999"),
               std::runtime_error);
  EXPECT_THROW((void)server::net::parse_endpoint(""), std::runtime_error);
}

// --- client deadline ---------------------------------------------------------

TEST(ServeClient, TimeoutRaisesStructuredErrorAgainstASilentPeer) {
  // A listener that accepts (the kernel completes the handshake from the
  // backlog) but never reads or replies: without a deadline the client
  // would block forever; with one it must throw the structured type within
  // the configured window.
  const auto requested = server::net::parse_endpoint("tcp:127.0.0.1:0");
  const int listen_fd = server::net::listen_endpoint(requested, 1);
  ASSERT_GE(listen_fd, 0);
  const auto bound = server::net::bound_endpoint(listen_fd, requested);

  server::Client client(server::net::to_string(bound), /*timeout_ms=*/300);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.ping(), server::TimeoutError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  try {
    (void)client.ping();
  } catch (const server::TimeoutError& error) {
    EXPECT_NE(std::string(error.what()).find("300 ms"), std::string::npos);
  }
  ::close(listen_fd);
}

TEST_F(ServerTest, TimeoutDoesNotFireOnAResponsiveDaemon) {
  auto daemon = make_server(1);
  server::Client client(daemon->socket_path(), /*timeout_ms=*/30000);
  EXPECT_EQ(client.ping().protocol, server::kProtocolVersion);
  // Repeated calls re-arm the window; a healthy daemon never trips it.
  EXPECT_EQ(client.ping().protocol, server::kProtocolVersion);
}

TEST(ServeProtocol, ErrorResponseCarriesStatusAndMessage) {
  const auto payload = server::encode_response(server::Status::kBadRequest,
                                               "unknown design 'x'", false, {});
  const auto response = server::decode_response(payload);
  EXPECT_EQ(response.status, server::Status::kBadRequest);
  EXPECT_EQ(response.message, "unknown design 'x'");
  EXPECT_TRUE(response.body.empty());
}

}  // namespace
