#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tvla/welch.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris::tvla;

TEST(Welch, HandComputedExample) {
  // Q0 = {1,2,3,4,5} (mean 3, s^2 2.5), Q1 = {2,4,6,8,10} (mean 6, s^2 10).
  // t = (3-6)/sqrt(2.5/5 + 10/5) = -3/sqrt(2.5) = -1.897366596...
  const auto r = welch_t(3.0, 2.5, 5, 6.0, 10.0, 5);
  EXPECT_NEAR(r.t, -1.8973665961, 1e-9);
  // dof = 2.5^2 / (0.5^2/4 + 2^2/4) = 6.25/1.0625 = 5.88235...
  EXPECT_NEAR(r.dof, 5.8823529412, 1e-9);
}

TEST(Welch, SymmetryAndSign) {
  const auto a = welch_t(1.0, 1.0, 100, 2.0, 1.0, 100);
  const auto b = welch_t(2.0, 1.0, 100, 1.0, 1.0, 100);
  EXPECT_DOUBLE_EQ(a.t, -b.t);
  EXPECT_LT(a.t, 0.0);
}

TEST(Welch, DegenerateInputsGiveZero) {
  EXPECT_EQ(welch_t(1.0, 1.0, 1, 2.0, 1.0, 100).t, 0.0);   // n0 too small
  EXPECT_EQ(welch_t(1.0, 0.0, 100, 1.0, 0.0, 100).t, 0.0);  // zero variance
}

TEST(Welch, LeakyPredicateUsesThreshold) {
  WelchResult r;
  r.t = 4.6;
  EXPECT_TRUE(r.leaky());
  r.t = -4.6;
  EXPECT_TRUE(r.leaky());
  r.t = 4.4;
  EXPECT_FALSE(r.leaky());
  EXPECT_TRUE(r.leaky(4.0));
  EXPECT_DOUBLE_EQ(kLeakageThreshold, 4.5);
}

TEST(Welch, AccumulatorAndTwoPassAgree) {
  polaris::util::Xoshiro256 rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> q0(300), q1(400);
    for (auto& x : q0) x = rng.gaussian() * 2.0 + 1.0;
    for (auto& x : q1) x = rng.gaussian() * 1.5 + 1.2;
    MomentAccumulator a0, a1;
    for (const double x : q0) a0.add(x);
    for (const double x : q1) a1.add(x);
    const auto one_pass = welch_t(a0, a1);
    const auto two_pass = welch_t_two_pass(q0, q1);
    EXPECT_NEAR(one_pass.t, two_pass.t, 1e-9);
    EXPECT_NEAR(one_pass.dof, two_pass.dof, 1e-6);
  }
}

TEST(Welch, BinaryCountsMatchExplicitSamples) {
  // welch_t_binary must equal the generic formula on the expanded samples.
  polaris::util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t n0 = 500, n1 = 600;
    std::uint64_t ones0 = 0, ones1 = 0;
    std::vector<double> q0, q1;
    for (std::uint64_t i = 0; i < n0; ++i) {
      const bool bit = rng.chance(0.3);
      ones0 += bit;
      q0.push_back(bit ? 1.0 : 0.0);
    }
    for (std::uint64_t i = 0; i < n1; ++i) {
      const bool bit = rng.chance(0.5);
      ones1 += bit;
      q1.push_back(bit ? 1.0 : 0.0);
    }
    const auto fast = welch_t_binary(n0, ones0, n1, ones1);
    const auto slow = welch_t_two_pass(q0, q1);
    EXPECT_NEAR(fast.t, slow.t, 1e-9);
  }
}

TEST(Welch, NullDistributionIsCalibrated) {
  // Same-distribution classes: |t| should exceed 4.5 essentially never and
  // the empirical standard deviation of t should be ~1.
  polaris::util::Xoshiro256 rng(99);
  int exceed = 0;
  double sum_sq = 0.0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    MomentAccumulator a0, a1;
    for (int i = 0; i < 500; ++i) a0.add(rng.gaussian());
    for (int i = 0; i < 500; ++i) a1.add(rng.gaussian());
    const double t = welch_t(a0, a1).t;
    sum_sq += t * t;
    if (std::fabs(t) > 4.5) ++exceed;
  }
  EXPECT_EQ(exceed, 0);
  EXPECT_NEAR(std::sqrt(sum_sq / trials), 1.0, 0.15);
}

TEST(Welch, DetectsPlantedDifference) {
  polaris::util::Xoshiro256 rng(5);
  MomentAccumulator a0, a1;
  for (int i = 0; i < 2000; ++i) a0.add(rng.gaussian());
  for (int i = 0; i < 2000; ++i) a1.add(rng.gaussian() + 0.5);
  EXPECT_GT(std::fabs(welch_t(a0, a1).t), 4.5);
}

TEST(Welch, TwoPassRejectsTinySets) {
  const std::vector<double> one{1.0};
  const std::vector<double> many{1.0, 2.0, 3.0};
  EXPECT_EQ(welch_t_two_pass(one, many).t, 0.0);
}

}  // namespace
