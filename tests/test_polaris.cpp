// End-to-end integration tests of the POLARIS pipeline (Algorithms 1 + 2).
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "graph/features.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

/// Small, fast config for tests (full-size parameters live in the benches).
core::PolarisConfig test_config() {
  core::PolarisConfig config;
  config.mask_size = 30;
  config.iterations = 6;
  config.locality = 5;
  config.tvla.traces = 2048;
  config.tvla.noise_std_fj = 1.0;
  config.model_rounds = 60;
  config.seed = 3;
  return config;
}

/// Two tiny training designs so the whole train() stays fast.
std::vector<circuits::Design> tiny_training_suite() {
  std::vector<circuits::Design> designs;
  {
    circuits::Design d{"sbox1", circuits::make_aes_sbox_layer(1), {}};
    d.roles.assign(d.netlist.primary_inputs().size(), circuits::InputRole::kData);
    for (std::size_t i = 8; i < 16; ++i) d.roles[i] = circuits::InputRole::kKey;
    designs.push_back(std::move(d));
  }
  {
    circuits::Design d{"mult6", circuits::make_multiplier(6), {}};
    d.roles.assign(d.netlist.primary_inputs().size(), circuits::InputRole::kData);
    designs.push_back(std::move(d));
  }
  return designs;
}

TEST(Cognition, GeneratesLabelledSamples) {
  const auto designs = tiny_training_suite();
  ml::Dataset data;
  const auto stats =
      core::generate_cognition_data(designs[0], lib(), test_config(), data);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_EQ(stats.samples, data.size());
  EXPECT_GT(data.size(), 50u);
  // Both labels must occur (otherwise theta_r or the leak floor is off).
  EXPECT_GT(data.positives(), 0u);
  EXPECT_GT(data.negatives(), 0u);
  // Feature width matches the locality-5 spec.
  EXPECT_EQ(data.feature_count(), graph::FeatureSpec{5}.dim());
}

TEST(Cognition, DeterministicForSeed) {
  const auto designs = tiny_training_suite();
  ml::Dataset a, b;
  (void)core::generate_cognition_data(designs[1], lib(), test_config(), a);
  (void)core::generate_cognition_data(designs[1], lib(), test_config(), b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(a.row(i)[0], b.row(i)[0]);
  }
}

TEST(Cognition, ThetaRControlsPositiveRate) {
  const auto designs = tiny_training_suite();
  auto strict = test_config();
  strict.theta_r = 0.95;
  auto lenient = test_config();
  lenient.theta_r = 0.20;
  ml::Dataset strict_data, lenient_data;
  (void)core::generate_cognition_data(designs[0], lib(), strict, strict_data);
  (void)core::generate_cognition_data(designs[0], lib(), lenient, lenient_data);
  // Looser threshold -> more "good masking" labels (paper Sec. V-A: high
  // theta_r causes data imbalance).
  EXPECT_GE(lenient_data.positives(), strict_data.positives());
}

class PolarisEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    polaris_ = new core::Polaris(test_config());
    const auto designs = tiny_training_suite();
    summary_ = polaris_->train(designs, lib());
  }
  static void TearDownTestSuite() {
    delete polaris_;
    polaris_ = nullptr;
  }

  static core::Polaris* polaris_;
  static core::TrainingSummary summary_;
};

core::Polaris* PolarisEndToEnd::polaris_ = nullptr;
core::TrainingSummary PolarisEndToEnd::summary_{};

TEST_F(PolarisEndToEnd, TrainingProducesModelAndRules) {
  EXPECT_TRUE(polaris_->trained());
  EXPECT_GT(summary_.samples, 100u);
  EXPECT_GT(summary_.dataset_seconds, 0.0);
  EXPECT_EQ(polaris_->model().name(), "AdaBoost");
  EXPECT_FALSE(polaris_->model().ensemble().trees.empty());
}

TEST_F(PolarisEndToEnd, ScoresAreProbabilitiesOnMaskableGates) {
  circuits::Design target{"sbox", circuits::make_aes_sbox_layer(1), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  const auto scores = polaris_->score_gates(target, core::InferenceMode::kModel);
  ASSERT_EQ(scores.size(), target.netlist.gate_count());
  for (netlist::GateId g = 0; g < scores.size(); ++g) {
    if (netlist::is_maskable(target.netlist.gate(g).type)) {
      EXPECT_GE(scores[g], 0.0);
      EXPECT_LE(scores[g], 1.0);
    } else {
      EXPECT_EQ(scores[g], 0.0);
    }
  }
}

TEST_F(PolarisEndToEnd, MaskDesignSelectsRequestedCount) {
  circuits::Design target{"sbox", circuits::make_aes_sbox_layer(1), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  const auto outcome = polaris_->mask_design(target, lib(), 40);
  EXPECT_EQ(outcome.selected.size(), 40u);
  EXPECT_GT(outcome.masked.gate_count(), target.netlist.gate_count());
  EXPECT_FALSE(outcome.verification.has_value());
  outcome.masked.validate();
}

TEST_F(PolarisEndToEnd, MaskingReducesLeakage) {
  circuits::Design target{"sbox", circuits::make_aes_sbox_layer(1), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  for (std::size_t i = 8; i < 16; ++i) {
    target.roles[i] = circuits::InputRole::kKey;
  }
  const auto tvla_config = core::tvla_config_for(polaris_->config(), target);
  const auto before = tvla::run_fixed_vs_random(target.netlist, lib(), tvla_config);
  ASSERT_GT(before.leaky_count(), 0u);

  const auto outcome = polaris_->mask_design(target, lib(),
                                             before.leaky_count(),
                                             core::InferenceMode::kModel,
                                             /*verify=*/true);
  ASSERT_TRUE(outcome.verification.has_value());
  EXPECT_LT(outcome.verification->total_abs_t(), before.total_abs_t());
}

TEST_F(PolarisEndToEnd, AllInferenceModesWork) {
  circuits::Design target{"mult", circuits::make_multiplier(6), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  for (const auto mode :
       {core::InferenceMode::kModel, core::InferenceMode::kRules,
        core::InferenceMode::kModelPlusRules}) {
    const auto outcome = polaris_->mask_design(target, lib(), 15, mode);
    EXPECT_LE(outcome.selected.size(), 15u);
    outcome.masked.validate();
  }
}

TEST_F(PolarisEndToEnd, SelectionIsRankedByScore) {
  circuits::Design target{"sbox", circuits::make_aes_sbox_layer(1), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  const auto scores = polaris_->score_gates(target, core::InferenceMode::kModel);
  const auto outcome = polaris_->mask_design(target, lib(), 25);
  for (std::size_t i = 1; i < outcome.selected.size(); ++i) {
    EXPECT_GE(scores[outcome.selected[i - 1]], scores[outcome.selected[i]]);
  }
}

TEST(Polaris, UntrainedMaskingThrows) {
  core::Polaris untrained(test_config());
  circuits::Design target{"mult", circuits::make_multiplier(4), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  EXPECT_THROW((void)untrained.mask_design(target, lib(), 5), std::logic_error);
}

TEST(Polaris, ModelFactoryHonorsKind) {
  auto config = test_config();
  config.model = core::ModelKind::kRandomForest;
  EXPECT_EQ(core::make_model(config)->name(), "RandomForest");
  config.model = core::ModelKind::kXgboost;
  EXPECT_EQ(core::make_model(config)->name(), "XGBoost");
  config.model = core::ModelKind::kAdaBoost;
  EXPECT_EQ(core::make_model(config)->name(), "AdaBoost");
  EXPECT_EQ(core::to_string(core::ModelKind::kXgboost), "XGBoost");
}

TEST(Polaris, RoleMappingMatchesProtocol) {
  circuits::Design d{"x", circuits::make_multiplier(4), {}};
  d.roles = {circuits::InputRole::kData, circuits::InputRole::kKey,
             circuits::InputRole::kControl};
  d.roles.resize(d.netlist.primary_inputs().size(), circuits::InputRole::kData);
  const auto classes = core::input_classes_for(d);
  EXPECT_EQ(classes[0], tvla::InputClass::kSensitive);
  EXPECT_EQ(classes[1], tvla::InputClass::kFixedCommon);
  EXPECT_EQ(classes[2], tvla::InputClass::kRandomCommon);
  const auto tvla_config = core::tvla_config_for(test_config(), d);
  EXPECT_EQ(tvla_config.input_class.size(), d.roles.size());
}

}  // namespace
