#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/memctrl.hpp"
#include "engine/thread_pool.hpp"
#include "engine/trace_engine.hpp"
#include "masking/masking.hpp"
#include "tvla/moments.hpp"
#include "tvla/tvla.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  engine::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), 0,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  engine::ThreadPool pool(0);
  std::size_t sum = 0;  // no synchronization needed: must run on this thread
  pool.parallel_for(100, 0, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  auto& pool = engine::ThreadPool::shared();
  std::atomic<int> total{0};
  pool.parallel_for(8, 0, [&](std::size_t) {
    pool.parallel_for(8, 0, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, PropagatesExceptions) {
  engine::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16, 0,
                                 [&](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(engine::ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(engine::ThreadPool::resolve_threads(5), 5u);
}

// --- ShardPlan / stream_seed -------------------------------------------------

TEST(ShardPlan, CoversBatchRangeContiguously) {
  for (const std::size_t batches : {0u, 1u, 3u, 4u, 5u, 64u, 128u, 1000u}) {
    const auto plan = engine::ShardPlan::make(batches);
    EXPECT_EQ(plan.total_batches, batches);
    if (batches == 0) {
      EXPECT_EQ(plan.shard_count, 0u);
      continue;
    }
    EXPECT_GE(plan.shard_count, 1u);
    EXPECT_LE(plan.shard_count, engine::kMaxShardsPerCampaign);
    std::size_t covered = 0;
    for (std::size_t s = 0; s < plan.shard_count; ++s) {
      EXPECT_EQ(plan.begin(s), covered);
      EXPECT_GT(plan.end(s), plan.begin(s));  // no empty shards
      covered = plan.end(s);
    }
    EXPECT_EQ(covered, batches);
  }
}

TEST(ShardPlan, ShortCampaignsStillShard) {
  // Sequential designs pack 64*cycles_per_batch samples per batch, so
  // realistic budgets are a handful of batches; the plan must not collapse
  // them to a serial single shard (threads knob would go inert).
  for (const std::size_t batches : {2u, 4u, 8u, 16u}) {
    EXPECT_EQ(engine::ShardPlan::make(batches).shard_count, batches);
  }
  EXPECT_GE(engine::ShardPlan::make(100).shard_count,
            engine::kMinShardsPerCampaign);
}

TEST(StreamSeed, DistinctPerIndexAndTag) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 1000; ++index) {
    for (const std::uint64_t tag : {1ULL, 2ULL, 3ULL}) {
      seen.insert(engine::stream_seed(42, index, tag));
    }
  }
  EXPECT_EQ(seen.size(), 3000u);
}

// --- Mergeable moments -------------------------------------------------------

TEST(CampaignMoments, ShardedMergeMatchesSinglePass) {
  // The ISSUE's acceptance bar: merged Welford accumulators must match the
  // single-pass statistics to 1e-12 on synthetic data, for several shard
  // counts (shards of unequal size included).
  util::Xoshiro256 rng(2024);
  std::vector<double> xs(4096);
  for (auto& x : xs) x = rng.gaussian() * 3.0 + 1.5;

  tvla::MomentAccumulator whole;
  for (const double x : xs) whole.add(x);

  for (const std::size_t shards : {2u, 3u, 8u, 64u}) {
    std::vector<tvla::MomentAccumulator> parts(shards);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      parts[(i * shards) / xs.size()].add(xs[i]);
    }
    tvla::MomentAccumulator merged = parts[0];
    for (std::size_t s = 1; s < shards; ++s) merged.merge(parts[s]);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(merged.variance_sample(), whole.variance_sample(), 1e-12);
    EXPECT_NEAR(merged.central_moment(3), whole.central_moment(3), 1e-10);
    EXPECT_NEAR(merged.central_moment(4), whole.central_moment(4), 1e-9);
  }
}

TEST(CampaignMoments, MergeCombinesAllCounters) {
  tvla::CampaignMoments a(3, 1), b(3, 1);
  a.add_lane_counts(10, 54);
  b.add_lane_counts(20, 44);
  a.add_single_ones(1, 4, 9);
  b.add_single_ones(1, 6, 1);
  a.add_multi_sample(0, true, 2.0);
  a.add_multi_sample(0, false, 1.0);
  b.add_multi_sample(0, true, 4.0);
  a.merge(b);
  EXPECT_EQ(a.n_fixed(), 30u);
  EXPECT_EQ(a.n_random(), 98u);
  EXPECT_EQ(a.single_ones_fixed(1), 10u);
  EXPECT_EQ(a.single_ones_random(1), 10u);
  EXPECT_EQ(a.multi_fixed(0).count(), 2u);
  EXPECT_DOUBLE_EQ(a.multi_fixed(0).mean(), 3.0);
  EXPECT_EQ(a.multi_random(0).count(), 1u);
}

// --- Campaign determinism across thread counts -------------------------------

void expect_reports_identical(const tvla::LeakageReport& a,
                              const tvla::LeakageReport& b) {
  ASSERT_EQ(a.t_values().size(), b.t_values().size());
  for (std::size_t g = 0; g < a.t_values().size(); ++g) {
    // Bit-identical, not just close: the engine's determinism contract.
    EXPECT_EQ(a.t_values()[g], b.t_values()[g]) << "group " << g;
  }
}

TEST(TraceEngine, CombinationalReportIndependentOfThreadCount) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  tvla::TvlaConfig config;
  config.traces = 4096;
  config.seed = 7;
  config.threads = 1;
  const auto serial = tvla::run_fixed_vs_random(nl, lib(), config);
  for (const std::size_t threads : {2u, 8u, 0u}) {
    config.threads = threads;
    expect_reports_identical(serial,
                             tvla::run_fixed_vs_random(nl, lib(), config));
  }
}

TEST(TraceEngine, SequentialReportIndependentOfThreadCount) {
  const auto nl = circuits::make_memctrl(4, 4);
  tvla::TvlaConfig config;
  config.traces = 8192;
  config.cycles_per_batch = 8;
  config.seed = 11;
  config.threads = 1;
  const auto serial = tvla::run_fixed_vs_random(nl, lib(), config);
  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    expect_reports_identical(serial,
                             tvla::run_fixed_vs_random(nl, lib(), config));
  }
}

TEST(TraceEngine, FixedVsFixedReportIndependentOfThreadCount) {
  const auto nl = circuits::make_adder(8);
  tvla::TvlaConfig config;
  config.traces = 2048;
  config.seed = 3;
  config.threads = 1;
  const auto serial = tvla::run_fixed_vs_fixed(nl, lib(), config);
  config.threads = 8;
  expect_reports_identical(serial, tvla::run_fixed_vs_fixed(nl, lib(), config));
}

TEST(TraceEngine, MaskedDesignReportIndependentOfThreadCount) {
  // Masked composites add kRand cells, exercising the per-batch mask-share
  // reseeding path.
  const auto nl = circuits::make_adder(8);
  std::vector<netlist::GateId> targets;
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    if (netlist::is_maskable(nl.gate(g).type)) targets.push_back(g);
  }
  const auto masked = masking::apply_masking(nl, targets);
  tvla::TvlaConfig config;
  config.traces = 2048;
  config.threads = 1;
  const auto serial = tvla::run_fixed_vs_random(masked.design, lib(), config);
  config.threads = 8;
  expect_reports_identical(
      serial, tvla::run_fixed_vs_random(masked.design, lib(), config));
}

}  // namespace
