// Tests for the Algorithm-2 coherence-smoothing refinement and cross-scheme
// masking properties (see DESIGN.md section 3).
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "masking/masking.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

core::PolarisConfig fast_config(double smoothing) {
  core::PolarisConfig config;
  config.mask_size = 30;
  config.iterations = 6;
  config.locality = 5;
  config.tvla.traces = 2048;
  config.model_rounds = 60;
  config.coherence_smoothing = smoothing;
  config.seed = 3;
  return config;
}

std::vector<circuits::Design> tiny_training() {
  std::vector<circuits::Design> designs;
  circuits::Design d{"sbox1", circuits::make_aes_sbox_layer(1), {}};
  d.roles.assign(d.netlist.primary_inputs().size(), circuits::InputRole::kData);
  designs.push_back(std::move(d));
  return designs;
}

TEST(Coherence, ZeroSmoothingIsPaperLiteralRanking) {
  // With smoothing off, scores are raw model probabilities: verify by
  // training twice with the only difference being the smoothing knob and
  // checking the scores change (smoothing does something) while the
  // underlying model is identical.
  core::Polaris raw(fast_config(0.0));
  core::Polaris smooth(fast_config(0.5));
  const auto training = tiny_training();
  (void)raw.train(training, lib());
  (void)smooth.train(training, lib());

  circuits::Design target{"sbox", circuits::make_aes_sbox_layer(1), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  const auto raw_scores = raw.score_gates(target, core::InferenceMode::kModel);
  const auto smooth_scores =
      smooth.score_gates(target, core::InferenceMode::kModel);
  ASSERT_EQ(raw_scores.size(), smooth_scores.size());
  bool any_difference = false;
  for (std::size_t g = 0; g < raw_scores.size(); ++g) {
    if (std::fabs(raw_scores[g] - smooth_scores[g]) > 1e-12) {
      any_difference = true;
    }
    // Smoothed scores remain valid probabilities.
    EXPECT_GE(smooth_scores[g], 0.0);
    EXPECT_LE(smooth_scores[g], 1.0);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Coherence, SmoothingIsConvexCombination) {
  // A smoothed score never exceeds the max of (own, neighborhood-mean):
  // verify the bound max(smoothed) <= max(raw) over maskable gates.
  core::Polaris raw(fast_config(0.0));
  core::Polaris smooth(fast_config(0.7));
  const auto training = tiny_training();
  (void)raw.train(training, lib());
  (void)smooth.train(training, lib());
  circuits::Design target{"mult", circuits::make_multiplier(6), {}};
  target.roles.assign(target.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  const auto raw_scores = raw.score_gates(target, core::InferenceMode::kModel);
  const auto smooth_scores =
      smooth.score_gates(target, core::InferenceMode::kModel);
  double raw_max = 0.0, smooth_max = 0.0;
  for (std::size_t g = 0; g < raw_scores.size(); ++g) {
    raw_max = std::max(raw_max, raw_scores[g]);
    smooth_max = std::max(smooth_max, smooth_scores[g]);
  }
  EXPECT_LE(smooth_max, raw_max + 1e-12);
}

TEST(Coherence, MaskedRegionLeaksOnlyAtBoundary) {
  // Oracle property behind the smoothing prior: masking ALL TVLA-flagged
  // gates collapses every flagged group; whatever remains leaky afterwards
  // was below threshold before (boundary relocation, not failure).
  const auto nl = circuits::make_aes_sbox_layer(1);
  tvla::TvlaConfig config;
  config.traces = 8192;
  config.noise_std_fj = 1.0;
  const auto before = tvla::run_fixed_vs_random(nl, lib(), config);
  const auto leaky = before.leaky_groups();
  ASSERT_FALSE(leaky.empty());
  std::vector<netlist::GateId> maskable;
  for (const auto g : leaky) {
    if (netlist::is_maskable(nl.gate(g).type)) maskable.push_back(g);
  }
  const auto masked = masking::apply_masking(nl, maskable);
  const auto after = tvla::run_fixed_vs_random(masked.design, lib(), config);
  for (const auto g : maskable) {
    EXPECT_LT(std::fabs(after.t_value(g)), config.threshold)
        << "masked group g" << g << " must collapse";
  }
}

class SchemeLeakage : public ::testing::TestWithParam<masking::Scheme> {};

TEST_P(SchemeLeakage, BothSchemesCollapseMaskedGroups) {
  const auto scheme = GetParam();
  const auto nl = circuits::make_multiplier(6);
  tvla::TvlaConfig config;
  config.traces = 8192;
  config.noise_std_fj = 0.5;
  const auto before = tvla::run_fixed_vs_random(nl, lib(), config);
  const auto leaky = before.leaky_groups();
  ASSERT_FALSE(leaky.empty());
  std::vector<netlist::GateId> targets;
  for (const auto g : leaky) {
    if (netlist::is_maskable(nl.gate(g).type)) targets.push_back(g);
  }
  const auto masked = masking::apply_masking(nl, targets, scheme);
  const auto after = tvla::run_fixed_vs_random(masked.design, lib(), config);
  double before_sum = 0.0, after_sum = 0.0;
  for (const auto g : targets) {
    before_sum += std::fabs(before.t_value(g));
    after_sum += std::fabs(after.t_value(g));
  }
  EXPECT_LT(after_sum, 0.25 * before_sum)
      << "scheme " << (scheme == masking::Scheme::kTrichina ? "trichina" : "dom");
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeLeakage,
                         ::testing::Values(masking::Scheme::kTrichina,
                                           masking::Scheme::kDom));

TEST(Coherence, RandBitsScaleWithMaskedCount) {
  const auto nl = circuits::make_multiplier(6);
  std::vector<netlist::GateId> few, many;
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    if (!netlist::is_maskable(nl.gate(g).type)) continue;
    if (few.size() < 5) few.push_back(g);
    many.push_back(g);
  }
  const auto small = masking::apply_masking(nl, few);
  const auto large = masking::apply_masking(nl, many);
  EXPECT_GT(small.added_rand_bits, 0u);
  EXPECT_GT(large.added_rand_bits, small.added_rand_bits);
  EXPECT_GT(large.added_cells, small.added_cells);
}

}  // namespace
