// Property harness for the compiled simulation kernel (sim/compiled.hpp):
// randomized netlists evaluated by the compiled kernel vs the reference
// gate-by-gate oracle (sim/reference.hpp), asserting bit-identical value
// words, toggle words, and per-lane energies; TVLA campaigns over the
// kernel are checked bit-identical across 1/2/8 threads and against the
// pre-compiled-plan overload. tests/test_golden.cpp remains the
// end-to-end determinism lock (committed CSVs, byte-stable).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "circuits/random_logic.hpp"
#include "circuits/suite.hpp"
#include "masking/masking.hpp"
#include "netlist/netlist.hpp"
#include "power/power_model.hpp"
#include "power/sample_plan.hpp"
#include "sim/compiled.hpp"
#include "sim/reference.hpp"
#include "sim/simd.hpp"
#include "sim/simulator.hpp"
#include "tvla/tvla.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::GateId;
using netlist::NetId;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

/// Reference per-lane total power: ascending-gate sweep over the oracle's
/// toggles, mirroring the pre-kernel PowerModel::total_power loop.
std::vector<double> reference_total_power(const netlist::Netlist& design,
                                          const power::PowerModel& power,
                                          const sim::ReferenceSimulator& sim) {
  std::vector<double> lanes(sim::kLanes, 0.0);
  for (GateId g = 0; g < design.gate_count(); ++g) {
    const std::uint64_t toggles = sim.toggles(g);
    if (toggles == 0) continue;
    const double energy = power.gate_energy(g);
    std::uint64_t bits = toggles;
    while (bits != 0) {
      lanes[static_cast<std::size_t>(__builtin_ctzll(bits))] += energy;
      bits &= bits - 1;
    }
  }
  return lanes;
}

/// Drives both simulators with identical stimulus for `cycles` evals and
/// asserts bit-identical values (every net), toggles (every gate), and
/// per-lane energies after each eval. Both consume their internal RNGs in
/// the same order, so seeding them identically keeps kRand streams equal.
void expect_lockstep(const netlist::Netlist& design, std::uint64_t seed,
                     std::size_t cycles, bool latch) {
  const auto compiled = sim::compile(design);
  sim::Simulator fast(compiled, seed);
  sim::ReferenceSimulator oracle(design, seed);
  const power::PowerModel power(design, lib());
  util::Xoshiro256 stimulus(seed ^ 0x57151u);

  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < design.primary_inputs().size(); ++i) {
      const std::uint64_t word = stimulus();
      fast.set_input(i, word);
      oracle.set_input(i, word);
    }
    fast.eval();
    oracle.eval();

    for (NetId n = 0; n < design.net_count(); ++n) {
      ASSERT_EQ(fast.value(n), oracle.value(n))
          << "net " << n << " cycle " << c;
    }
    for (GateId g = 0; g < design.gate_count(); ++g) {
      ASSERT_EQ(fast.toggles(g), oracle.toggles(g))
          << "gate " << g << " cycle " << c;
    }
    std::vector<double> fast_lanes;
    power.total_power(fast, fast_lanes);
    const auto oracle_lanes = reference_total_power(design, power, oracle);
    for (std::size_t lane = 0; lane < sim::kLanes; ++lane) {
      ASSERT_EQ(fast_lanes[lane], oracle_lanes[lane])
          << "lane " << lane << " cycle " << c;  // bitwise double equality
    }
    if (latch) {
      fast.latch();
      oracle.latch();
    }
  }
}

/// Blocked lockstep: one K-word Simulator vs K independent single-word
/// oracles. Oracle w is seeded Simulator::word_seed(seed, w) - the same
/// stream the blocked simulator assigns to lane word w - and receives the
/// same per-word stimulus, so every lane word must match its oracle's
/// values and toggles bit-for-bit, for every block width.
void expect_blocked_lockstep(const netlist::Netlist& design,
                             std::uint64_t seed, std::size_t lane_words,
                             std::size_t cycles, bool latch) {
  const auto compiled = sim::compile(design);
  sim::Simulator fast(compiled, seed, lane_words);
  ASSERT_EQ(fast.lane_words(), lane_words);
  std::vector<std::unique_ptr<sim::ReferenceSimulator>> oracles;
  for (std::size_t w = 0; w < lane_words; ++w) {
    oracles.push_back(std::make_unique<sim::ReferenceSimulator>(
        design, sim::Simulator::word_seed(seed, w)));
  }
  util::Xoshiro256 stimulus(seed ^ 0xb10cull);

  for (std::size_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < design.primary_inputs().size(); ++i) {
      for (std::size_t w = 0; w < lane_words; ++w) {
        const std::uint64_t word = stimulus();
        fast.set_input_word(i, w, word);
        oracles[w]->set_input(i, word);
      }
    }
    fast.eval();
    for (auto& oracle : oracles) oracle->eval();

    for (std::size_t w = 0; w < lane_words; ++w) {
      for (NetId n = 0; n < design.net_count(); ++n) {
        ASSERT_EQ(fast.value_word(n, w), oracles[w]->value(n))
            << "net " << n << " word " << w << " cycle " << c;
      }
      for (GateId g = 0; g < design.gate_count(); ++g) {
        ASSERT_EQ(fast.toggles_word(g, w), oracles[w]->toggles(g))
            << "gate " << g << " word " << w << " cycle " << c;
      }
    }
    if (latch) {
      fast.latch();
      for (auto& oracle : oracles) oracle->latch();
    }
  }
}

TEST(CompiledKernel, RandomLogicMatchesOracle) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    circuits::RandomLogicConfig config;
    config.inputs = 24;
    config.gates = 300;
    config.outputs = 12;
    config.seed = seed;
    const auto design = circuits::make_random_logic(config);
    expect_lockstep(design, /*seed=*/seed * 1337 + 1, /*cycles=*/16,
                    /*latch=*/false);
  }
}

TEST(CompiledKernel, MaskedRandomLogicMatchesOracle) {
  // Masking adds kRand sources and multi-member groups: exercises the RNG
  // stream order contract and the multi bucket of the sampling plan.
  circuits::RandomLogicConfig config;
  config.inputs = 16;
  config.gates = 200;
  config.seed = 5;
  const auto original = circuits::make_random_logic(config);
  std::vector<GateId> targets;
  for (GateId g = 0; g < original.gate_count(); ++g) {
    if (netlist::is_maskable(original.gate(g).type) && g % 3 == 0) {
      targets.push_back(g);
    }
  }
  const auto masked = masking::apply_masking(original, targets);
  ASSERT_GT(masked.added_rand_bits, 0u);
  expect_lockstep(masked.design, /*seed=*/77, /*cycles=*/16, /*latch=*/false);
}

TEST(CompiledKernel, SequentialDesignMatchesOracle) {
  // DFF state, latch(), and the q-slot write path over many cycles.
  const auto design = circuits::get_design("memctrl", 0.3);
  expect_lockstep(design.netlist, /*seed=*/11, /*cycles=*/24, /*latch=*/true);
}

TEST(CompiledKernel, EvalSingleMatchesOracle) {
  circuits::RandomLogicConfig config;
  config.inputs = 12;
  config.gates = 120;
  config.seed = 29;
  const auto design = circuits::make_random_logic(config);
  const auto compiled = sim::compile(design);
  sim::Simulator fast(compiled, 1);
  sim::ReferenceSimulator oracle(design, 1);
  util::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> bits(design.primary_inputs().size());
    for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (rng() & 1) != 0;
    EXPECT_EQ(fast.eval_single(bits), oracle.eval_single(bits));
  }
}

TEST(CompiledKernel, ResetAndReseedMatchOracle) {
  const auto design = circuits::get_design("memctrl", 0.25);
  const auto compiled = sim::compile(design.netlist);
  sim::Simulator fast(compiled, 9);
  sim::ReferenceSimulator oracle(design.netlist, 9);
  for (int round = 0; round < 3; ++round) {
    fast.reset(100 + round);
    oracle.reset(100 + round);
    for (int c = 0; c < 6; ++c) {
      fast.set_inputs_random();
      oracle.set_inputs_random();
      fast.eval();
      oracle.eval();
      for (NetId n = 0; n < design.netlist.net_count(); ++n) {
        ASSERT_EQ(fast.value(n), oracle.value(n));
      }
      fast.latch();
      oracle.latch();
    }
  }
}

TEST(CompiledKernel, PrimaryInputTogglesReadZeroAfterEval) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_cell(CellType::kNot, {a}));
  sim::Simulator sim(nl);
  sim.set_input(0, 0);
  sim.eval();
  sim.set_input(0, ~0ULL);
  sim.eval();
  EXPECT_EQ(sim.toggles(nl.net(a).driver), 0u);  // staged writes: toggle 0
}

TEST(CompiledKernel, CompileValidatesOnce) {
  circuits::RandomLogicConfig config;
  config.gates = 150;
  config.seed = 2;
  const auto design = circuits::make_random_logic(config);
  const auto compiled = sim::compile(design);
  EXPECT_EQ(compiled->slot_count(), design.net_count());
  EXPECT_GE(compiled->level_count(), 1u);
  // Batching is a compression: never more runs than combinational gates.
  EXPECT_LE(compiled->run_count(), design.combinational_gate_count());
  // Every net owns a distinct slot (dense renumbering is a bijection).
  std::vector<bool> seen(design.net_count(), false);
  for (NetId n = 0; n < design.net_count(); ++n) {
    const std::uint32_t slot = compiled->slot(n);
    ASSERT_LT(slot, design.net_count());
    ASSERT_FALSE(seen[slot]);
    seen[slot] = true;
  }
}

TEST(CompiledKernel, SamplePlanPreservesAscendingOrderWithinGroups) {
  circuits::RandomLogicConfig config;
  config.gates = 180;
  config.seed = 13;
  const auto original = circuits::make_random_logic(config);
  std::vector<GateId> targets;
  for (GateId g = 0; g < original.gate_count(); ++g) {
    if (netlist::is_maskable(original.gate(g).type)) targets.push_back(g);
  }
  const auto masked = masking::apply_masking(original, targets);
  const auto compiled = sim::compile(masked.design);
  const power::PowerModel power(masked.design, lib());
  const power::SamplePlan plan(*compiled, power);
  ASSERT_GT(plan.multi_group_count(), 0u);

  // Reconstruct the gate order the plan's multis were emitted in: it must
  // be ascending GateId (the accumulation-order contract, DESIGN.md).
  std::size_t cursor = 0;
  GateId previous_gate = 0;
  for (const GateId g : power.active_gates()) {
    const GateId group = masked.design.gate(g).group;
    if (plan.group_multi_index(group) == power::SamplePlan::kNotMulti) continue;
    ASSERT_LT(cursor, plan.multis().size());
    EXPECT_EQ(plan.multis()[cursor].toggle_slot, compiled->toggle_slot(g));
    if (cursor > 0) {
      EXPECT_GT(g, previous_gate);
    }
    previous_gate = g;
    ++cursor;
  }
  EXPECT_EQ(cursor, plan.multis().size());
}

TEST(CompiledKernel, CampaignBitIdenticalAcrossThreads) {
  const auto design = circuits::get_design("square", 0.3);
  tvla::TvlaConfig config;
  config.traces = 2048;
  config.seed = 77;
  config.noise_std_fj = 1.0;

  config.threads = 1;
  const auto t1 = tvla::run_fixed_vs_random(design.netlist, lib(), config);
  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const auto tn = tvla::run_fixed_vs_random(design.netlist, lib(), config);
    ASSERT_EQ(t1.t_values().size(), tn.t_values().size());
    for (std::size_t g = 0; g < t1.t_values().size(); ++g) {
      ASSERT_EQ(t1.t_values()[g], tn.t_values()[g]) << "threads=" << threads;
    }
  }

  // The pre-compiled-plan overload shares one CompiledDesign across
  // campaigns and still reproduces the same report bit-for-bit.
  const auto compiled = sim::compile(design.netlist);
  config.threads = 2;
  const auto shared_plan = tvla::run_fixed_vs_random(compiled, lib(), config);
  for (std::size_t g = 0; g < t1.t_values().size(); ++g) {
    ASSERT_EQ(t1.t_values()[g], shared_plan.t_values()[g]);
  }
}

TEST(CompiledKernel, SequentialCampaignBitIdenticalAcrossThreads) {
  const auto design = circuits::get_design("memctrl", 0.3);
  tvla::TvlaConfig config;
  config.traces = 2048;
  config.cycles_per_batch = 8;
  config.seed = 31;
  config.noise_std_fj = 1.0;

  config.threads = 1;
  const auto t1 = tvla::run_fixed_vs_random(design.netlist, lib(), config);
  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const auto tn = tvla::run_fixed_vs_random(design.netlist, lib(), config);
    for (std::size_t g = 0; g < t1.t_values().size(); ++g) {
      ASSERT_EQ(t1.t_values()[g], tn.t_values()[g]) << "threads=" << threads;
    }
  }
}

TEST(CompiledKernel, BlockedLockstepRandomLogic) {
  circuits::RandomLogicConfig config;
  config.inputs = 20;
  config.gates = 250;
  config.outputs = 10;
  config.seed = 41;
  const auto design = circuits::make_random_logic(config);
  for (const std::size_t lane_words : {1u, 2u, 4u, 8u}) {
    expect_blocked_lockstep(design, /*seed=*/901 + lane_words, lane_words,
                            /*cycles=*/8, /*latch=*/false);
  }
}

TEST(CompiledKernel, BlockedLockstepMaskedDesign) {
  // kRand refresh draws slot-ascending PER WORD STREAM: oracle w must see
  // exactly the blocked simulator's word-w share stream.
  circuits::RandomLogicConfig config;
  config.inputs = 14;
  config.gates = 160;
  config.seed = 8;
  const auto original = circuits::make_random_logic(config);
  std::vector<GateId> targets;
  for (GateId g = 0; g < original.gate_count(); ++g) {
    if (netlist::is_maskable(original.gate(g).type) && g % 2 == 0) {
      targets.push_back(g);
    }
  }
  const auto masked = masking::apply_masking(original, targets);
  ASSERT_GT(masked.added_rand_bits, 0u);
  for (const std::size_t lane_words : {2u, 4u, 8u}) {
    expect_blocked_lockstep(masked.design, /*seed=*/55, lane_words,
                            /*cycles=*/8, /*latch=*/false);
  }
}

TEST(CompiledKernel, BlockedLockstepSequentialDesign) {
  // The Simulator supports K > 1 on sequential designs (blocked DFF state
  // and latch); only TVLA campaigns force lane_words = 1, for sample-order
  // reasons, not correctness ones.
  const auto design = circuits::get_design("memctrl", 0.25);
  for (const std::size_t lane_words : {2u, 4u}) {
    expect_blocked_lockstep(design.netlist, /*seed=*/23, lane_words,
                            /*cycles=*/12, /*latch=*/true);
  }
}

TEST(CompiledKernel, InvalidLaneWordsRejected) {
  circuits::RandomLogicConfig config;
  config.gates = 40;
  config.seed = 3;
  const auto design = circuits::make_random_logic(config);
  const auto compiled = sim::compile(design);
  for (const std::size_t bad : {0u, 3u, 5u, 6u, 7u, 16u}) {
    EXPECT_THROW(sim::Simulator(compiled, 1, bad), std::invalid_argument)
        << "lane_words=" << bad;
  }
  tvla::TvlaConfig tvla_config;
  tvla_config.traces = 128;
  tvla_config.lane_words = 3;
  EXPECT_THROW(tvla::run_fixed_vs_random(design, lib(), tvla_config),
               std::invalid_argument);
}

TEST(CompiledKernel, BufNotFusionPreservesResults) {
  // A buf/not level whose outputs feed exactly the next level fuses into
  // its consumer run (one dispatch fewer); outputs are still materialized
  // and bit-identical - checked against the oracle via lockstep.
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId na = nl.add_cell(CellType::kNot, {a});
  const NetId nb = nl.add_cell(CellType::kNot, {b});
  // Both consumers land in the single next run (same level, same kernel),
  // which is the fold precondition.
  nl.mark_output(nl.add_cell(CellType::kAnd, {na, nb}));
  nl.mark_output(nl.add_cell(CellType::kAnd, {na, b}));
  const auto compiled = sim::compile(nl);
  EXPECT_GT(compiled->fused_run_count(), 0u);
  expect_lockstep(nl, /*seed=*/19, /*cycles=*/8, /*latch=*/false);
  expect_blocked_lockstep(nl, /*seed=*/19, /*lane_words=*/4, /*cycles=*/8,
                          /*latch=*/false);
}

TEST(CompiledKernel, CampaignBitIdenticalAcrossLaneWords) {
  // 1984 traces = 31 batches: not a multiple of any block width > 1, so
  // every width > 1 exercises tail blocks inside shard ranges. lane_words
  // is an execution knob like threads: the report must be bit-identical
  // for every setting (0 = auto).
  const auto design = circuits::get_design("square", 0.3);
  tvla::TvlaConfig config;
  config.traces = 1984;
  config.seed = 77;
  config.noise_std_fj = 1.0;
  config.threads = 2;

  config.lane_words = 1;
  const auto base = tvla::run_fixed_vs_random(design.netlist, lib(), config);
  for (const std::size_t lane_words : {0u, 2u, 4u, 8u}) {
    config.lane_words = lane_words;
    const auto blocked =
        tvla::run_fixed_vs_random(design.netlist, lib(), config);
    ASSERT_EQ(base.t_values().size(), blocked.t_values().size());
    for (std::size_t g = 0; g < base.t_values().size(); ++g) {
      ASSERT_EQ(base.t_values()[g], blocked.t_values()[g])
          << "lane_words=" << lane_words;
    }
  }
}

TEST(CompiledKernel, ForcedPortableMatchesForcedAvx2) {
  if (!(sim::avx2_built() && sim::avx2_supported())) {
    GTEST_SKIP() << "AVX2 unavailable on this build/host";
  }
  circuits::RandomLogicConfig config;
  config.inputs = 18;
  config.gates = 220;
  config.seed = 61;
  const auto design = circuits::make_random_logic(config);
  const auto compiled = sim::compile(design);

  // Run the same stimulus under each forced mode and compare every raw
  // value/toggle word: the instantiations share one kernel template, so
  // equality is by construction - this pins it against regressions.
  const auto run_mode = [&](sim::SimdMode mode, std::size_t lane_words,
                            std::vector<std::uint64_t>& values,
                            std::vector<std::uint64_t>& toggles) {
    sim::set_simd_mode(mode);
    sim::Simulator simulator(compiled, 5, lane_words);
    util::Xoshiro256 stimulus(0xf00du);
    for (std::size_t c = 0; c < 6; ++c) {
      for (std::size_t i = 0; i < design.primary_inputs().size(); ++i) {
        for (std::size_t w = 0; w < lane_words; ++w) {
          simulator.set_input_word(i, w, stimulus());
        }
      }
      simulator.eval();
    }
    for (NetId n = 0; n < design.net_count(); ++n) {
      for (std::size_t w = 0; w < lane_words; ++w) {
        values.push_back(simulator.value_word(n, w));
      }
    }
    for (GateId g = 0; g < design.gate_count(); ++g) {
      for (std::size_t w = 0; w < lane_words; ++w) {
        toggles.push_back(simulator.toggles_word(g, w));
      }
    }
  };

  for (const std::size_t lane_words : {4u, 8u}) {
    std::vector<std::uint64_t> portable_values, portable_toggles;
    std::vector<std::uint64_t> avx2_values, avx2_toggles;
    run_mode(sim::SimdMode::kPortable, lane_words, portable_values,
             portable_toggles);
    run_mode(sim::SimdMode::kAvx2, lane_words, avx2_values, avx2_toggles);
    sim::set_simd_mode(sim::SimdMode::kAuto);
    EXPECT_EQ(portable_values, avx2_values) << "lane_words=" << lane_words;
    EXPECT_EQ(portable_toggles, avx2_toggles) << "lane_words=" << lane_words;
  }
}

}  // namespace
