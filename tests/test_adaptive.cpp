// Sequential early-stopping TVLA (TvlaBudget): the checkpoint schedule and
// stop decisions must be pure functions of the campaign (batch count, seed,
// budget knobs) - bit-identical across thread counts and lane-block widths
// - and a budget that never decides must reproduce the fixed-budget report
// bit-for-bit (the checkpointed path merges the same shard sequence in the
// same order, so the float op sequence is unchanged).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "circuits/arith.hpp"
#include "engine/scheduler.hpp"
#include "netlist/netlist.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::NetId;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

/// y = a & b, both inputs sensitive: leaks hard, so a budget-enabled
/// campaign decides "leaky" long before the full budget runs.
netlist::Netlist leaky_netlist() {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_cell(CellType::kAnd, {a, b});
  nl.mark_output(y);
  return nl;
}

tvla::TvlaConfig budget_config(std::size_t traces, std::size_t min_traces) {
  tvla::TvlaConfig config;
  config.traces = traces;
  config.noise_std_fj = 0.1;
  config.budget.enabled = true;
  config.budget.min_traces = min_traces;
  return config;
}

void expect_reports_bit_identical(const tvla::LeakageReport& a,
                                  const tvla::LeakageReport& b) {
  ASSERT_EQ(a.t_values().size(), b.t_values().size());
  for (std::size_t g = 0; g < a.t_values().size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.t_values()[g]),
              std::bit_cast<std::uint64_t>(b.t_values()[g]))
        << "group " << g;
  }
}

TEST(AdaptiveTvla, StopDecisionIsIdenticalAcrossThreadsAndLaneWords) {
  const auto nl = leaky_netlist();
  const auto config = budget_config(8192, 512);

  tvla::TvlaConfig reference_config = config;
  reference_config.threads = 1;
  reference_config.lane_words = 1;
  const auto reference = tvla::run_fixed_vs_random(nl, lib(), reference_config);
  ASSERT_TRUE(reference.early_stopped());

  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t lane_words : {1u, 4u}) {
      tvla::TvlaConfig sweep = config;
      sweep.threads = threads;
      sweep.lane_words = lane_words;
      const auto report = tvla::run_fixed_vs_random(nl, lib(), sweep);
      EXPECT_EQ(report.early_stopped(), reference.early_stopped())
          << threads << "t/" << lane_words << "w";
      EXPECT_EQ(report.traces_used(), reference.traces_used())
          << threads << "t/" << lane_words << "w";
      expect_reports_bit_identical(report, reference);
    }
  }
}

TEST(AdaptiveTvla, EarlyStopSavesTracesAtTheSameVerdict) {
  const auto nl = leaky_netlist();

  tvla::TvlaConfig fixed;
  fixed.traces = 8192;
  fixed.noise_std_fj = 0.1;
  const auto full = tvla::run_fixed_vs_random(nl, lib(), fixed);

  const auto report =
      tvla::run_fixed_vs_random(nl, lib(), budget_config(8192, 512));
  EXPECT_TRUE(report.early_stopped());
  EXPECT_LT(report.traces_used(), 8192u);
  EXPECT_GE(report.traces_used(), 512u);
  // Fewer traces shift the t magnitudes, but the verdict must agree.
  EXPECT_EQ(report.leaky_groups(), full.leaky_groups());
  // The fixed path never populates trace usage.
  EXPECT_EQ(full.traces_used(), 0u);
  EXPECT_FALSE(full.early_stopped());
}

TEST(AdaptiveTvla, UndecidedBudgetMatchesFixedPathBitIdentically) {
  // An unreachable margin keeps every checkpoint undecided, so the
  // campaign runs its full budget through the checkpointed merge path -
  // which must reproduce the fixed path's floats exactly.
  const auto nl = circuits::make_adder(8);
  tvla::TvlaConfig fixed;
  fixed.traces = 2048;
  fixed.seed = 33;
  const auto expected = tvla::run_fixed_vs_random(nl, lib(), fixed);

  tvla::TvlaConfig undecided = fixed;
  undecided.budget.enabled = true;
  undecided.budget.min_traces = 128;
  undecided.budget.margin = 1e18;
  const auto report = tvla::run_fixed_vs_random(nl, lib(), undecided);
  EXPECT_FALSE(report.early_stopped());
  EXPECT_EQ(report.traces_used(), 2048u);
  expect_reports_bit_identical(report, expected);
}

TEST(AdaptiveTvla, ProgressFiresInMilestoneOrderWithPartialReports) {
  const auto nl = leaky_netlist();
  const auto config = budget_config(8192, 512);

  std::vector<std::size_t> checkpoints;
  engine::Scheduler scheduler(4);
  auto future = tvla::submit_fixed_vs_random(
      scheduler, nl, lib(), config,
      [&](const tvla::LeakageReport& partial, std::size_t traces_done) {
        // Called under the campaign merge lock: plain vector is safe.
        checkpoints.push_back(traces_done);
        EXPECT_EQ(partial.t_values().size(), nl.gate_count());
        EXPECT_EQ(partial.traces_used(), traces_done);
      });
  scheduler.drain();
  const auto report = future.get();

  ASSERT_FALSE(checkpoints.empty());
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    EXPECT_LT(checkpoints[i - 1], checkpoints[i]);
  }
  EXPECT_GE(checkpoints.front(), 512u);
  EXPECT_LE(checkpoints.back(), 8192u);
  // The campaign stopped at the last checkpoint the observer saw.
  ASSERT_TRUE(report.early_stopped());
  EXPECT_EQ(report.traces_used(), checkpoints.back());
}

TEST(AdaptiveTvla, SchedulerSubmissionMatchesSynchronousRun) {
  const auto nl = leaky_netlist();
  const auto config = budget_config(8192, 512);
  const auto synchronous = tvla::run_fixed_vs_random(nl, lib(), config);

  engine::Scheduler scheduler(3);
  auto a = tvla::submit_fixed_vs_random(scheduler, nl, lib(), config);
  // A second campaign interleaves in the same queue; both must still stop
  // at the same milestone with the same stats.
  auto b = tvla::submit_fixed_vs_random(scheduler, nl, lib(), config);
  scheduler.drain();
  for (auto* future : {&a, &b}) {
    const auto report = future->get();
    EXPECT_EQ(report.early_stopped(), synchronous.early_stopped());
    EXPECT_EQ(report.traces_used(), synchronous.traces_used());
    expect_reports_bit_identical(report, synchronous);
  }
}

TEST(AdaptiveTvla, EnabledBudgetRequiresPositiveMinTraces) {
  tvla::TvlaConfig config = budget_config(1024, 0);
  EXPECT_THROW((void)tvla::run_fixed_vs_random(leaky_netlist(), lib(), config),
               std::invalid_argument);
}

}  // namespace
