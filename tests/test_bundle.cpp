// Polaris bundle persistence: a trained pipeline saved to .plb and loaded
// back must serve bit-identical score_gates output and identical
// mask_design gate selections for every InferenceMode; damaged bundles
// must fail with clean errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "serialize/archive.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

core::PolarisConfig test_config() {
  core::PolarisConfig config;
  config.mask_size = 30;
  config.iterations = 4;
  config.locality = 5;
  config.tvla.traces = 1024;
  config.tvla.noise_std_fj = 1.0;
  config.model_rounds = 40;
  config.seed = 3;
  return config;
}

circuits::Design target_design() {
  circuits::Design design{"sbox", circuits::make_aes_sbox_layer(1), {}};
  design.roles.assign(design.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);
  return design;
}

class BundleRoundTrip : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    polaris_ = new core::Polaris(test_config());
    std::vector<circuits::Design> training;
    {
      circuits::Design d{"sbox1", circuits::make_aes_sbox_layer(1), {}};
      d.roles.assign(d.netlist.primary_inputs().size(),
                     circuits::InputRole::kData);
      training.push_back(std::move(d));
    }
    {
      circuits::Design d{"mult6", circuits::make_multiplier(6), {}};
      d.roles.assign(d.netlist.primary_inputs().size(),
                     circuits::InputRole::kData);
      training.push_back(std::move(d));
    }
    (void)polaris_->train(training, lib());
    path_ = new std::string(::testing::TempDir() + "polaris_test_bundle.plb");
    polaris_->save_bundle(*path_);
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete polaris_;
    polaris_ = nullptr;
    path_ = nullptr;
  }

  static core::Polaris* polaris_;
  static std::string* path_;
};

core::Polaris* BundleRoundTrip::polaris_ = nullptr;
std::string* BundleRoundTrip::path_ = nullptr;

TEST_F(BundleRoundTrip, ScoresAreBitIdenticalForEveryMode) {
  // A fresh Polaris built only from the file - the "new process" contract.
  const auto served = core::Polaris::load_bundle(*path_);
  EXPECT_TRUE(served.trained());
  const auto design = target_design();
  for (const auto mode :
       {core::InferenceMode::kModel, core::InferenceMode::kRules,
        core::InferenceMode::kModelPlusRules}) {
    const auto expected = polaris_->score_gates(design, mode);
    const auto actual = served.score_gates(design, mode);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t g = 0; g < expected.size(); ++g) {
      EXPECT_EQ(actual[g], expected[g]) << "gate " << g;  // exact, not near
    }
  }
}

TEST_F(BundleRoundTrip, MaskSelectionsAreIdenticalForEveryMode) {
  const auto served = core::Polaris::load_bundle(*path_);
  const auto design = target_design();
  for (const auto mode :
       {core::InferenceMode::kModel, core::InferenceMode::kRules,
        core::InferenceMode::kModelPlusRules}) {
    const auto expected = polaris_->mask_design(design, lib(), 25, mode);
    const auto actual = served.mask_design(design, lib(), 25, mode);
    EXPECT_EQ(actual.selected, expected.selected);
  }
}

TEST_F(BundleRoundTrip, MetadataMatchesTrainedState) {
  const auto info = core::read_bundle_info(*path_);
  EXPECT_EQ(info.format_version, serialize::kFormatVersion);
  EXPECT_EQ(info.model_name, polaris_->model().name());
  EXPECT_EQ(info.samples, polaris_->training_data().size());
  EXPECT_EQ(info.positives, polaris_->training_data().positives());
  EXPECT_EQ(info.rule_count, polaris_->rules().rules().size());
  EXPECT_EQ(info.config_fingerprint,
            core::config_fingerprint(polaris_->config()));
  EXPECT_TRUE(info.has_dataset);

  const auto served = core::Polaris::load_bundle(*path_);
  EXPECT_EQ(served.training_data().size(), polaris_->training_data().size());
  EXPECT_EQ(served.config().locality, polaris_->config().locality);
  EXPECT_EQ(served.config().seed, polaris_->config().seed);
}

TEST_F(BundleRoundTrip, DatasetFreeBundleStillServes) {
  const std::string slim = ::testing::TempDir() + "polaris_slim_bundle.plb";
  polaris_->save_bundle(slim, /*include_training_data=*/false);
  const auto info = core::read_bundle_info(slim);
  EXPECT_FALSE(info.has_dataset);

  const auto served = core::Polaris::load_bundle(slim);
  EXPECT_TRUE(served.training_data().empty());
  const auto design = target_design();
  const auto expected =
      polaris_->score_gates(design, core::InferenceMode::kModel);
  const auto actual = served.score_gates(design, core::InferenceMode::kModel);
  EXPECT_EQ(actual, expected);
  std::remove(slim.c_str());
}

TEST_F(BundleRoundTrip, FlippedByteFailsCleanly) {
  auto bytes = serialize::read_file(*path_);
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] ^= 0x01;
  const std::string corrupt = ::testing::TempDir() + "polaris_corrupt.plb";
  serialize::write_file(corrupt, bytes);
  EXPECT_THROW((void)core::Polaris::load_bundle(corrupt), std::runtime_error);
  std::remove(corrupt.c_str());
}

TEST_F(BundleRoundTrip, TruncationFailsCleanly) {
  auto bytes = serialize::read_file(*path_);
  bytes.resize(bytes.size() / 3);
  const std::string cut = ::testing::TempDir() + "polaris_truncated.plb";
  serialize::write_file(cut, bytes);
  EXPECT_THROW((void)core::Polaris::load_bundle(cut), std::runtime_error);
  std::remove(cut.c_str());
}

TEST_F(BundleRoundTrip, FutureFormatVersionFailsCleanly) {
  auto bytes = serialize::read_file(*path_);
  bytes[4] = static_cast<std::uint8_t>(serialize::kFormatVersion + 3);
  const std::uint32_t crc =
      serialize::crc32(std::span(bytes.data(), bytes.size() - 8));
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  const std::string future = ::testing::TempDir() + "polaris_future.plb";
  serialize::write_file(future, bytes);
  try {
    (void)core::Polaris::load_bundle(future);
    FAIL() << "future-version bundle accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
  std::remove(future.c_str());
}

TEST(Bundle, UntrainedSaveThrows) {
  const core::Polaris untrained(test_config());
  EXPECT_THROW(untrained.save_bundle(::testing::TempDir() + "nope.plb"),
               std::logic_error);
}

TEST(Bundle, MissingFileThrows) {
  EXPECT_THROW(
      (void)core::Polaris::load_bundle("/nonexistent/path/model.plb"),
      std::runtime_error);
}

}  // namespace
