#include <gtest/gtest.h>

#include <cmath>

#include "circuits/cordic.hpp"
#include "circuits/log2.hpp"
#include "circuits/memctrl.hpp"
#include "circuits/misc.hpp"
#include "circuits/random_logic.hpp"
#include "circuits/suite.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;

// --- voter -------------------------------------------------------------------

class VoterSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VoterSizes, MatchesReferenceOnRandomBallots) {
  const std::size_t n = GetParam();
  const auto nl = circuits::make_voter(n);
  sim::Simulator sim(nl);
  util::Xoshiro256 rng(n);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> ballots(n);
    for (auto&& b : ballots) b = (rng() & 1) != 0;
    EXPECT_EQ(sim.eval_single(ballots)[0], circuits::ref_voter(ballots));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VoterSizes, ::testing::Values(3, 5, 7, 15, 31));

TEST(Voter, UnanimousAndTieBreak) {
  const auto nl = circuits::make_voter(5);
  sim::Simulator sim(nl);
  EXPECT_TRUE(sim.eval_single({true, true, true, true, true})[0]);
  EXPECT_FALSE(sim.eval_single({false, false, false, false, false})[0]);
  EXPECT_TRUE(sim.eval_single({true, true, true, false, false})[0]);
  EXPECT_FALSE(sim.eval_single({true, true, false, false, false})[0]);
}

TEST(Voter, RejectsEvenCounts) {
  EXPECT_THROW((void)circuits::make_voter(4), std::invalid_argument);
  EXPECT_THROW((void)circuits::make_voter(1), std::invalid_argument);
}

// --- arbiter -----------------------------------------------------------------

TEST(Arbiter, MatchesReferenceAcrossPointers) {
  const std::size_t n = 8;
  const auto nl = circuits::make_arbiter(n);
  sim::Simulator sim(nl);
  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> req(n);
    for (auto&& r : req) r = rng.chance(0.4);
    const std::size_t ptr = rng.bounded(n);
    std::vector<bool> in = req;
    for (std::size_t b = 0; b < 3; ++b) in.push_back(((ptr >> b) & 1) != 0);
    const auto out = sim.eval_single(in);
    const auto want = circuits::ref_arbiter(req, ptr);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], want[i]) << "req slot " << i << " ptr " << ptr;
    }
    bool any_req = false;
    for (const bool r : req) any_req = any_req || r;
    EXPECT_EQ(out[n], any_req);  // "any" output
  }
}

TEST(Arbiter, GrantIsOneHot) {
  const auto nl = circuits::make_arbiter(16);
  sim::Simulator sim(nl);
  util::Xoshiro256 rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> in(16 + 4);
    for (auto&& b : in) b = (rng() & 1) != 0;
    const auto out = sim.eval_single(in);
    int grants = 0;
    for (std::size_t i = 0; i < 16; ++i) grants += out[i] ? 1 : 0;
    EXPECT_LE(grants, 1);
  }
}

TEST(Arbiter, RejectsNonPowerOfTwo) {
  EXPECT_THROW((void)circuits::make_arbiter(6), std::invalid_argument);
}

// --- log2 --------------------------------------------------------------------

TEST(Log2, ExhaustiveSixteenBitExponent) {
  const auto nl = circuits::make_log2(16, 8);
  sim::Simulator sim(nl);
  for (std::uint64_t a = 1; a < 65536; a += 251) {
    std::vector<bool> in(16);
    for (std::size_t b = 0; b < 16; ++b) in[b] = ((a >> b) & 1) != 0;
    const auto out = sim.eval_single(in);
    std::uint64_t exp = 0, frac = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      exp |= static_cast<std::uint64_t>(out[b]) << b;
    }
    for (std::size_t b = 0; b < 8; ++b) {
      frac |= static_cast<std::uint64_t>(out[4 + b]) << b;
    }
    const auto want = circuits::ref_log2(a, 16, 8);
    EXPECT_EQ(exp, want.exponent) << "a=" << a;
    EXPECT_EQ(frac, want.fraction) << "a=" << a;
  }
}

TEST(Log2, PowersOfTwoHaveZeroFraction) {
  for (std::size_t p = 0; p < 16; ++p) {
    const auto r = circuits::ref_log2(1ULL << p, 16, 8);
    EXPECT_EQ(r.exponent, p);
    EXPECT_EQ(r.fraction, 0u);
  }
}

TEST(Log2, ZeroInputConvention) {
  const auto nl = circuits::make_log2(8, 4);
  sim::Simulator sim(nl);
  const auto out = sim.eval_single(std::vector<bool>(8, false));
  for (const bool bit : out) EXPECT_FALSE(bit);
}

TEST(Log2, ApproximationIsClose) {
  // exp + frac/2^f approximates log2(a) within ~1/2^f + truncation.
  for (std::uint64_t a = 3; a < 60000; a = a * 3 + 1) {
    const auto r = circuits::ref_log2(a, 16, 8);
    const double approx = static_cast<double>(r.exponent) +
                          static_cast<double>(r.fraction) / 256.0;
    EXPECT_NEAR(approx, std::log2(static_cast<double>(a)), 0.09) << a;
  }
}

TEST(Log2, RejectsBadParams) {
  EXPECT_THROW((void)circuits::make_log2(12, 4), std::invalid_argument);
  EXPECT_THROW((void)circuits::make_log2(16, 16), std::invalid_argument);
}

// --- CORDIC sin --------------------------------------------------------------

TEST(Sin, CircuitMatchesFixedPointReference) {
  const std::size_t w = 12;
  const auto nl = circuits::make_sin(w);
  sim::Simulator sim(nl);
  util::Xoshiro256 rng(2);
  const std::uint64_t max_angle =
      static_cast<std::uint64_t>(1.5707 * std::ldexp(1.0, w - 1));
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t z = rng.bounded(max_angle);
    std::vector<bool> in(w);
    for (std::size_t b = 0; b < w; ++b) in[b] = ((z >> b) & 1) != 0;
    const auto out = sim.eval_single(in);
    std::uint64_t raw = 0;
    for (std::size_t b = 0; b < out.size(); ++b) {
      raw |= static_cast<std::uint64_t>(out[b]) << b;
    }
    const std::uint64_t mask = (1ULL << (w + 2)) - 1;
    const auto want =
        static_cast<std::uint64_t>(circuits::ref_sin_fixed(z, w)) & mask;
    EXPECT_EQ(raw, want) << "angle " << z;
  }
}

TEST(Sin, ReferenceApproximatesRealSine) {
  const std::size_t w = 16;
  const double scale = std::ldexp(1.0, w - 1);
  for (double angle = 0.05; angle < 1.55; angle += 0.1) {
    const auto z = static_cast<std::uint64_t>(angle * scale);
    const double got =
        static_cast<double>(circuits::ref_sin_fixed(z, w)) / scale;
    EXPECT_NEAR(got, std::sin(angle), 0.002) << angle;
  }
}

// --- memctrl -----------------------------------------------------------------

TEST(MemCtrl, CircuitTracksModelCycleByCycle) {
  const std::size_t aw = 4, dw = 8;
  const auto nl = circuits::make_memctrl(aw, dw);
  sim::Simulator sim(nl);
  circuits::MemCtrlModel model(aw, dw);
  util::Xoshiro256 rng(31);

  for (int cycle = 0; cycle < 600; ++cycle) {
    circuits::MemCtrlModel::Inputs in;
    in.req_valid = rng.chance(0.6);
    in.req_rw = rng.chance(0.5);
    in.req_row = rng.bounded(1ULL << aw);
    in.req_col = rng.bounded(1ULL << aw);
    in.wdata = rng.bounded(1ULL << dw);
    in.wmask = rng.bounded(1ULL << dw);

    std::vector<bool> bits;
    bits.push_back(in.req_valid);
    bits.push_back(in.req_rw);
    for (std::size_t b = 0; b < aw; ++b) bits.push_back(((in.req_row >> b) & 1) != 0);
    for (std::size_t b = 0; b < aw; ++b) bits.push_back(((in.req_col >> b) & 1) != 0);
    for (std::size_t b = 0; b < dw; ++b) bits.push_back(((in.wdata >> b) & 1) != 0);
    for (std::size_t b = 0; b < dw; ++b) bits.push_back(((in.wmask >> b) & 1) != 0);

    const auto out = sim.eval_single(bits);
    const auto want = model.outputs(in);

    // Outputs in declaration order: ack, busy, cmd[3], addr_out[aw], dq[dw].
    EXPECT_EQ(out[0], want.ack) << "cycle " << cycle;
    EXPECT_EQ(out[1], want.busy) << "cycle " << cycle;
    std::uint64_t cmd = 0, addr = 0, dq = 0;
    for (std::size_t b = 0; b < 3; ++b) cmd |= static_cast<std::uint64_t>(out[2 + b]) << b;
    for (std::size_t b = 0; b < aw; ++b) addr |= static_cast<std::uint64_t>(out[5 + b]) << b;
    for (std::size_t b = 0; b < dw; ++b) dq |= static_cast<std::uint64_t>(out[5 + aw + b]) << b;
    EXPECT_EQ(cmd, want.cmd) << "cycle " << cycle;
    EXPECT_EQ(addr, want.addr_out) << "cycle " << cycle;
    EXPECT_EQ(dq, want.dq) << "cycle " << cycle;

    sim.latch();
    model.step(in);
  }
}

TEST(MemCtrl, RefreshEventuallyFires) {
  circuits::MemCtrlModel model(4, 8);
  circuits::MemCtrlModel::Inputs idle;
  bool saw_refresh = false;
  for (int cycle = 0; cycle < 600; ++cycle) {
    if (model.outputs(idle).cmd == 4) saw_refresh = true;
    model.step(idle);
  }
  EXPECT_TRUE(saw_refresh);
}

// --- random logic / suite ------------------------------------------------------

TEST(RandomLogic, DeterministicPerSeed) {
  circuits::RandomLogicConfig config;
  config.gates = 100;
  config.seed = 5;
  const auto a = circuits::make_random_logic(config);
  const auto b = circuits::make_random_logic(config);
  EXPECT_EQ(a.gate_count(), b.gate_count());
  for (netlist::GateId g = 0; g < a.gate_count(); ++g) {
    EXPECT_EQ(a.gate(g).type, b.gate(g).type);
    EXPECT_EQ(a.gate(g).inputs, b.gate(g).inputs);
  }
  config.seed = 6;
  const auto c = circuits::make_random_logic(config);
  bool differs = c.gate_count() != a.gate_count();
  for (netlist::GateId g = 0; !differs && g < a.gate_count(); ++g) {
    differs = a.gate(g).type != c.gate(g).type || a.gate(g).inputs != c.gate(g).inputs;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomLogic, RespectsConfig) {
  circuits::RandomLogicConfig config;
  config.inputs = 20;
  config.gates = 333;
  config.outputs = 9;
  const auto nl = circuits::make_random_logic(config);
  EXPECT_EQ(nl.primary_inputs().size(), 20u);
  EXPECT_EQ(nl.primary_outputs().size(), 9u);
  EXPECT_EQ(nl.gate_count(), 20u + 333u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Suite, EvaluationSuiteHasElevenNamedDesigns) {
  const auto names = circuits::evaluation_names();
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names.front(), "des3");
  EXPECT_EQ(names.back(), "log2");
  // Scaled-down suite builds quickly and validates.
  const auto designs = circuits::evaluation_suite(0.4);
  ASSERT_EQ(designs.size(), 11u);
  for (const auto& d : designs) {
    EXPECT_EQ(d.roles.size(), d.netlist.primary_inputs().size()) << d.name;
    EXPECT_NO_THROW(d.netlist.validate()) << d.name;
    EXPECT_GT(d.netlist.gate_count(), 50u) << d.name;
  }
}

TEST(Suite, TrainingSuiteHasSixSmallDesigns) {
  const auto designs = circuits::training_suite();
  ASSERT_EQ(designs.size(), 6u);
  for (const auto& d : designs) {
    EXPECT_LT(d.netlist.gate_count(), 2000u) << d.name;
    EXPECT_EQ(d.roles.size(), d.netlist.primary_inputs().size()) << d.name;
  }
}

TEST(Suite, GetDesignByName) {
  const auto d = circuits::get_design("voter", 0.3);
  EXPECT_EQ(d.name, "voter");
  EXPECT_THROW((void)circuits::get_design("nonexistent"), std::invalid_argument);
  const auto t = circuits::get_design("train_adder16");
  EXPECT_EQ(t.name, "train_adder16");
}

}  // namespace
