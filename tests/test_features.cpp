#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/random_logic.hpp"
#include "graph/features.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::NetId;

TEST(FeatureSpec, DimensionsAddUp) {
  const graph::FeatureSpec spec{7};
  EXPECT_EQ(spec.node_slots(), 8u);
  EXPECT_EQ(spec.type_dims(), 8 * netlist::kCellTypeCount);
  EXPECT_EQ(spec.adjacency_dims(), 28u);
  EXPECT_EQ(spec.dim(), spec.type_dims() + 28 + 3);
  EXPECT_EQ(spec.feature_names().size(), spec.dim());
}

TEST(FeatureSpec, NamesMatchPaperVocabulary) {
  const graph::FeatureSpec spec{7};
  const auto names = spec.feature_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "G4=nand"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "adj(G0,G1)"), names.end());
  EXPECT_EQ(names.back(), "level");
}

TEST(FeatureExtractor, SelfTypeOneHot) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_cell(CellType::kNand, {a, b});
  nl.mark_output(y);
  graph::FeatureExtractor fx(nl, graph::FeatureSpec{3});
  const auto features = fx.extract(nl.net(y).driver);
  // slot 0 one-hot: exactly one bit set, at kNand's index.
  double sum = 0.0;
  for (std::size_t t = 0; t < netlist::kCellTypeCount; ++t) sum += features[t];
  EXPECT_EQ(sum, 1.0);
  EXPECT_EQ(features[static_cast<std::size_t>(CellType::kNand)], 1.0);
}

TEST(FeatureExtractor, NeighborTypesEncoded) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_cell(CellType::kNot, {a});
  const NetId y = nl.add_cell(CellType::kXor, {a, x});
  nl.mark_output(y);
  graph::FeatureExtractor fx(nl, graph::FeatureSpec{3});
  const auto features = fx.extract(nl.net(y).driver);
  // Neighbors of XOR: input driver + NOT. Slots 1..2 should contain one
  // kInput and one kNot one-hot (BFS order: sorted by gate id).
  const std::size_t slot1 = netlist::kCellTypeCount;
  const std::size_t input_idx = static_cast<std::size_t>(CellType::kInput);
  const std::size_t not_idx = static_cast<std::size_t>(CellType::kNot);
  EXPECT_EQ(features[slot1 + input_idx], 1.0);  // gate 0 (input) first
  EXPECT_EQ(features[2 * netlist::kCellTypeCount + not_idx], 1.0);
}

TEST(FeatureExtractor, EmptySlotsStayZero) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_cell(CellType::kNot, {a}));
  graph::FeatureExtractor fx(nl, graph::FeatureSpec{7});
  const auto features = fx.extract(1);  // the NOT; only 1 neighbor exists
  for (std::size_t slot = 2; slot < 8; ++slot) {
    for (std::size_t t = 0; t < netlist::kCellTypeCount; ++t) {
      EXPECT_EQ(features[slot * netlist::kCellTypeCount + t], 0.0);
    }
  }
}

TEST(FeatureExtractor, AdjacencyBitsReflectEdges) {
  // a -> NOT -> NOT2; G0=NOT2: neighbors = [NOT]; G0-G1 adjacent.
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_cell(CellType::kNot, {a});
  const NetId y = nl.add_cell(CellType::kNot, {x});
  nl.mark_output(y);
  graph::FeatureExtractor fx(nl, graph::FeatureSpec{2});
  const graph::FeatureSpec spec{2};
  const auto features = fx.extract(nl.net(y).driver);
  const std::size_t adj_base = spec.type_dims();
  EXPECT_EQ(features[adj_base + 0], 1.0);  // adj(G0,G1)
}

TEST(FeatureExtractor, ScalarsNormalized) {
  circuits::RandomLogicConfig config;
  config.gates = 300;
  config.seed = 17;
  const auto nl = circuits::make_random_logic(config);
  graph::FeatureExtractor fx(nl, graph::FeatureSpec{7});
  const graph::FeatureSpec spec{7};
  for (netlist::GateId g = 0; g < nl.gate_count(); g += 13) {
    const auto features = fx.extract(g);
    ASSERT_EQ(features.size(), spec.dim());
    for (std::size_t k = spec.dim() - 3; k < spec.dim(); ++k) {
      EXPECT_GE(features[k], 0.0);
      EXPECT_LE(features[k], 1.0);
    }
  }
}

TEST(FeatureExtractor, DeterministicAndBatchedAgree) {
  circuits::RandomLogicConfig config;
  config.gates = 150;
  config.seed = 29;
  const auto nl = circuits::make_random_logic(config);
  graph::FeatureExtractor fx(nl, graph::FeatureSpec{5});
  std::vector<netlist::GateId> gates{3, 40, 80, 120};
  const auto rows = fx.extract_all(gates);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    EXPECT_EQ(rows[i], fx.extract(gates[i]));
  }
}

class LocalitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LocalitySweep, DimMatchesExtractedSize) {
  const std::size_t locality = GetParam();
  circuits::RandomLogicConfig config;
  config.gates = 80;
  config.seed = 31;
  const auto nl = circuits::make_random_logic(config);
  graph::FeatureExtractor fx(nl, graph::FeatureSpec{locality});
  EXPECT_EQ(fx.extract(10).size(), graph::FeatureSpec{locality}.dim());
}

INSTANTIATE_TEST_SUITE_P(Localities, LocalitySweep,
                         ::testing::Values(1, 3, 5, 7, 9, 12));

}  // namespace
