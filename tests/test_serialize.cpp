// The serialization subsystem: archive container (endianness, chunking,
// CRC, version gates), artifact round-trips for all four classifiers,
// Dataset, and RuleSet, and the hard-failure paths (truncation, flipped
// bytes, future versions, malformed payloads - clean errors, never UB).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/forest.hpp"
#include "ml/gbdt.hpp"
#include "serialize/model_io.hpp"
#include "util/rng.hpp"
#include "xai/rules.hpp"

namespace {

using namespace polaris;

double uniform(util::Xoshiro256& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

// --- archive container ------------------------------------------------------

TEST(Archive, PrimitivesRoundTrip) {
  serialize::Writer out;
  out.begin_chunk("TEST");
  out.u8(0xAB);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFULL);
  out.i32(-12345);
  out.f64(-0.0);
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.f64(std::numeric_limits<double>::infinity());
  out.f64(5e-324);  // smallest denormal
  out.boolean(true);
  out.str(std::string_view("hello \n\0 world", 14));  // embedded NUL survives
  out.f64_vec(std::vector<double>{1.5, -2.5, 0.0});
  out.i32_vec(std::vector<int>{-1, 0, 7});
  out.bool_vec(std::vector<bool>{true, false, true});
  out.end_chunk();

  serialize::Reader in(out.finish());
  EXPECT_EQ(in.version(), serialize::kFormatVersion);
  in.enter_chunk("TEST");
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(in.i32(), -12345);
  const double neg_zero = in.f64();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(neg_zero),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_TRUE(std::isinf(in.f64()));
  EXPECT_EQ(in.f64(), 5e-324);
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.str(), std::string("hello \n\0 world", 14));
  EXPECT_EQ(in.f64_vec(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(in.i32_vec(), (std::vector<int>{-1, 0, 7}));
  EXPECT_EQ(in.bool_vec(), (std::vector<bool>{true, false, true}));
  in.exit_chunk();
}

TEST(Archive, LittleEndianOnDisk) {
  serialize::Writer out;
  out.begin_chunk("ENDI");
  out.u32(0x01020304u);
  out.end_chunk();
  const auto bytes = out.finish();
  // header (8) + tag (4) + length prefix (8) = payload starts at 20.
  ASSERT_GE(bytes.size(), 24u);
  EXPECT_EQ(bytes[20], 0x04);
  EXPECT_EQ(bytes[21], 0x03);
  EXPECT_EQ(bytes[22], 0x02);
  EXPECT_EQ(bytes[23], 0x01);
}

TEST(Archive, UnknownChunksAreSkippable) {
  serialize::Writer out;
  out.begin_chunk("NEWC");  // a future producer's section
  out.str("from the future");
  out.end_chunk();
  out.begin_chunk("KNWN");
  out.u32(42);
  out.end_chunk();

  serialize::Reader in(out.finish());
  EXPECT_EQ(in.peek_tag(), "NEWC");
  EXPECT_FALSE(in.try_enter_chunk("KNWN"));
  in.skip_chunk();
  in.enter_chunk("KNWN");
  EXPECT_EQ(in.u32(), 42u);
  in.exit_chunk();
  EXPECT_EQ(in.peek_tag(), "");
}

TEST(Archive, AppendedFieldsAreIgnoredByOldReaders) {
  serialize::Writer out;
  out.begin_chunk("GROW");
  out.u32(7);
  out.f64(3.25);  // field a newer writer appended
  out.end_chunk();
  out.begin_chunk("NEXT");
  out.u32(8);
  out.end_chunk();

  serialize::Reader in(out.finish());
  in.enter_chunk("GROW");
  EXPECT_EQ(in.u32(), 7u);
  in.exit_chunk();  // skips the appended f64
  in.enter_chunk("NEXT");
  EXPECT_EQ(in.u32(), 8u);
  in.exit_chunk();
}

TEST(Archive, TruncationFails) {
  serialize::Writer out;
  out.begin_chunk("TEST");
  for (int i = 0; i < 64; ++i) out.u64(static_cast<std::uint64_t>(i));
  out.end_chunk();
  const auto bytes = out.finish();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{11}, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(serialize::Reader{std::move(cut)}, std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST(Archive, EveryFlippedByteFails) {
  serialize::Writer out;
  out.begin_chunk("TEST");
  out.str("payload");
  out.end_chunk();
  const auto bytes = out.finish();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x40;
    EXPECT_THROW(serialize::Reader{std::move(corrupt)}, std::runtime_error)
        << "flipped byte " << i;
  }
}

TEST(Archive, FutureFormatVersionFails) {
  serialize::Writer out;
  out.begin_chunk("TEST");
  out.end_chunk();
  auto bytes = out.finish();
  bytes[4] = static_cast<std::uint8_t>(serialize::kFormatVersion + 1);
  // Re-seal so only the version gate (not the CRC) can reject it.
  const std::uint32_t crc =
      serialize::crc32(std::span(bytes.data(), bytes.size() - 8));
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  try {
    serialize::Reader in(std::move(bytes));
    FAIL() << "future version accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST(Archive, WrongTagAndOverreadFail) {
  serialize::Writer out;
  out.begin_chunk("ABCD");
  out.u32(1);
  out.end_chunk();
  serialize::Reader in(out.finish());
  EXPECT_THROW(in.enter_chunk("EFGH"), std::runtime_error);
  in.enter_chunk("ABCD");
  EXPECT_EQ(in.u32(), 1u);
  EXPECT_THROW((void)in.u32(), std::runtime_error);  // past chunk end
  in.exit_chunk();
}

// --- property / stress tests ------------------------------------------------

TEST(Archive, RandomizedChunkPayloadsRoundTrip) {
  // Seeded property sweep: archives with random chunk counts, random
  // payload mixes, and random vector lengths (empty included) must
  // round-trip value-exactly. Catches length-prefix and alignment bugs the
  // hand-written cases miss.
  util::Xoshiro256 rng(0x5eed);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t chunks = 1 + rng.bounded(5);
    std::vector<std::vector<double>> f64s(chunks);
    std::vector<std::vector<std::uint8_t>> u8s(chunks);
    std::vector<std::string> strs(chunks);
    std::vector<std::uint64_t> u64s(chunks);

    serialize::Writer out;
    for (std::size_t c = 0; c < chunks; ++c) {
      f64s[c].resize(rng.bounded(300));  // 0..299: empty vectors included
      for (auto& v : f64s[c]) v = rng.gaussian() * 1e3;
      u8s[c].resize(rng.bounded(1000));
      for (auto& v : u8s[c]) v = static_cast<std::uint8_t>(rng());
      strs[c].resize(rng.bounded(100));
      for (auto& ch : strs[c]) ch = static_cast<char>(rng());  // NULs too
      u64s[c] = rng();

      out.begin_chunk("PROP");
      out.u64(u64s[c]);
      out.f64_vec(f64s[c]);
      out.str(strs[c]);
      out.u8_vec(u8s[c]);
      out.end_chunk();
    }

    serialize::Reader in(out.finish());
    for (std::size_t c = 0; c < chunks; ++c) {
      in.enter_chunk("PROP");
      EXPECT_EQ(in.u64(), u64s[c]);
      const auto f64_back = in.f64_vec();
      ASSERT_EQ(f64_back.size(), f64s[c].size());
      for (std::size_t i = 0; i < f64_back.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(f64_back[i]),
                  std::bit_cast<std::uint64_t>(f64s[c][i]));
      }
      EXPECT_EQ(in.str(), strs[c]);
      EXPECT_EQ(in.u8_vec(), u8s[c]);
      in.exit_chunk();
    }
    EXPECT_EQ(in.peek_tag(), "");
  }
}

TEST(Archive, EveryPrefixOfASmallBundleFailsCleanly) {
  // Truncation sweep: EVERY proper prefix of a bundle-shaped archive
  // (nested chunks, the .plb tag layout) must raise std::runtime_error
  // from the Reader constructor - never crash, never parse.
  util::Xoshiro256 rng(77);
  serialize::Writer out;
  out.begin_chunk("HEAD");
  out.u32(1);
  out.str("polaris-bundle");
  out.u64(rng());
  out.end_chunk();
  out.begin_chunk("MODL");
  out.begin_chunk("TREE");  // nested, like the real ensemble layout
  std::vector<double> weights(17);
  for (auto& w : weights) w = rng.gaussian();
  out.f64_vec(weights);
  out.end_chunk();
  out.end_chunk();
  out.begin_chunk("DATA");
  out.u64(3);
  out.end_chunk();
  const auto bytes = out.finish();

  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<std::uint8_t> cut(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(serialize::Reader{std::move(cut)}, std::runtime_error)
        << "prefix of " << keep << " bytes parsed";
  }
  // The full archive, untouched, still reads: the sweep failed for the
  // right reason.
  serialize::Reader in{std::vector<std::uint8_t>(bytes)};
  in.enter_chunk("HEAD");
  EXPECT_EQ(in.u32(), 1u);
  in.exit_chunk();
}

TEST(Archive, RandomTruncationOfRandomArchivesNeverCrashes) {
  // Seeded stress: random archives, random cut points. Anything the
  // Reader accepts must be the untruncated whole (CRC guarantees it);
  // every cut must throw.
  util::Xoshiro256 rng(0xacc1de27);
  for (int trial = 0; trial < 30; ++trial) {
    serialize::Writer out;
    const std::size_t chunks = 1 + rng.bounded(4);
    for (std::size_t c = 0; c < chunks; ++c) {
      out.begin_chunk("RAND");
      std::vector<std::uint8_t> payload(rng.bounded(500));
      for (auto& v : payload) v = static_cast<std::uint8_t>(rng());
      out.u8_vec(payload);
      out.end_chunk();
    }
    const auto bytes = out.finish();
    for (int cut = 0; cut < 16; ++cut) {
      const std::size_t keep = rng.bounded(bytes.size());
      std::vector<std::uint8_t> prefix(
          bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
      EXPECT_THROW(serialize::Reader{std::move(prefix)}, std::runtime_error)
          << "trial " << trial << " kept " << keep << " of " << bytes.size();
    }
  }
}

TEST(ModelIo, OversizedDatasetRowCountFails) {
  // A lying row count must raise the clean error before any allocation.
  serialize::Writer out;
  out.begin_chunk("DATA");
  out.u64(std::uint64_t{1} << 40);  // claimed rows
  out.u64(8);                       // claimed feature width
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("DATA");
  EXPECT_THROW((void)serialize::read_dataset(in), std::runtime_error);
}

TEST(Archive, OversizedVectorCountFails) {
  // A corrupt length prefix must not drive a giant allocation; craft a
  // CRC-valid archive whose vector *count* lies.
  serialize::Writer out;
  out.begin_chunk("EVIL");
  out.u64(std::numeric_limits<std::uint64_t>::max());  // claimed f64 count
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("EVIL");
  EXPECT_THROW((void)in.f64_vec(), std::runtime_error);
}

// --- artifact round-trips ---------------------------------------------------

/// Nonlinearly-labelled synthetic data: mixed binary + continuous features,
/// the shape the POLARIS feature extractor produces.
ml::Dataset synthetic_dataset(std::size_t rows, std::size_t features,
                              std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  ml::Dataset data;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> x(features);
    for (std::size_t f = 0; f < features; ++f) {
      x[f] = f % 3 == 2 ? uniform(rng) : static_cast<double>(rng.bounded(2));
    }
    const bool label =
        (x[0] >= 0.5) != (x[1] >= 0.5) || x[features - 1] > 0.8;
    data.add(std::move(x), label ? 1 : 0);
  }
  return data;
}

void expect_identical_predictions(const ml::Classifier& a,
                                  const ml::Classifier& b,
                                  std::size_t features) {
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(features);
    for (auto& v : x) {
      v = trial % 2 == 0 ? uniform(rng) : static_cast<double>(rng.bounded(2));
    }
    // Bit-identical, not approximately equal: the serving path must
    // reproduce the training process's scores exactly.
    EXPECT_EQ(a.predict_proba(x), b.predict_proba(x));
    EXPECT_EQ(a.predict_margin(x), b.predict_margin(x));
  }
}

template <typename Model, typename Config>
void round_trip_classifier(Config config) {
  const std::size_t kFeatures = 9;
  const auto data = synthetic_dataset(240, kFeatures, 7);
  Model original(config);
  original.fit(data);
  ASSERT_FALSE(original.ensemble().trees.empty());

  serialize::Writer out;
  out.begin_chunk("MODL");
  ml::save_classifier(out, original);
  out.end_chunk();

  serialize::Reader in(out.finish());
  in.enter_chunk("MODL");
  const auto loaded = ml::load_classifier(in);
  in.exit_chunk();

  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->name(), original.name());
  EXPECT_EQ(loaded->kind(), original.kind());
  EXPECT_EQ(loaded->ensemble().trees.size(), original.ensemble().trees.size());
  expect_identical_predictions(original, *loaded, kFeatures);
}

TEST(ModelIo, DecisionTreeRoundTrips) {
  round_trip_classifier<ml::DecisionTree>(ml::DecisionTreeConfig{});
}

TEST(ModelIo, RandomForestRoundTrips) {
  round_trip_classifier<ml::RandomForest>(ml::ForestConfig{.trees = 25});
}

TEST(ModelIo, GbdtRoundTrips) {
  round_trip_classifier<ml::Gbdt>(ml::GbdtConfig{.rounds = 40});
}

TEST(ModelIo, AdaBoostRoundTrips) {
  round_trip_classifier<ml::AdaBoost>(ml::AdaBoostConfig{.rounds = 40});
}

TEST(ModelIo, UnknownClassifierKindFails) {
  serialize::Writer out;
  out.begin_chunk("MODL");
  out.u32(999);  // no such ClassifierKind
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("MODL");
  EXPECT_THROW((void)ml::load_classifier(in), std::runtime_error);
}

TEST(ModelIo, CorruptTreeChildIndicesFail) {
  // Children referring backwards (cycle) must be rejected, not walked.
  serialize::Writer out;
  out.begin_chunk("TREE");
  out.u64(1);          // node count
  out.i32(0);          // feature (interior node)
  out.f64(0.5);        // threshold
  out.i32(0);          // left -> itself: cycle
  out.i32(0);          // right
  out.f64(0.0);
  out.f64(1.0);
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("TREE");
  EXPECT_THROW((void)serialize::read_tree(in), std::runtime_error);
}

TEST(ModelIo, DatasetRoundTrips) {
  auto data = synthetic_dataset(60, 5, 3);
  data.set_weight(4, 2.75);
  serialize::Writer out;
  out.begin_chunk("DATA");
  serialize::write_dataset(out, data);
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("DATA");
  const auto loaded = serialize::read_dataset(in);
  in.exit_chunk();

  ASSERT_EQ(loaded.size(), data.size());
  ASSERT_EQ(loaded.feature_count(), data.feature_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(loaded.label(i), data.label(i));
    EXPECT_EQ(loaded.weight(i), data.weight(i));
    for (std::size_t f = 0; f < data.feature_count(); ++f) {
      EXPECT_EQ(loaded.row(i)[f], data.row(i)[f]);
    }
  }
}

TEST(ModelIo, RuleSetRoundTrips) {
  std::vector<xai::Rule> rules;
  rules.push_back(xai::Rule{{{3, true}, {7, false}}, 1, 12, 0.92});
  rules.push_back(xai::Rule{{{0, false}}, 0, 5, 0.71});
  const xai::RuleSet original(std::move(rules));

  serialize::Writer out;
  out.begin_chunk("RULE");
  serialize::write_ruleset(out, original);
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("RULE");
  const auto loaded = serialize::read_ruleset(in);
  in.exit_chunk();

  ASSERT_EQ(loaded.rules().size(), original.rules().size());
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> x(10);
    for (auto& v : x) v = static_cast<double>(rng.bounded(2));
    EXPECT_EQ(loaded.score(x), original.score(x));
  }
}

}  // namespace
