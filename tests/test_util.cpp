#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace polaris::util;

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 a(11);
  Xoshiro256 child = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == child()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, Split) {
  const auto tokens = split("a, b,,c", ", ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
  EXPECT_TRUE(split("", ",").empty());
  EXPECT_TRUE(split(",,,", ",").empty());
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("module top", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
  EXPECT_EQ(to_lower("NaNd"), "nand");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1.25"});
  table.add_row({"b", "33.10"});
  const std::string out = table.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("33.10"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, PadsMissingCells) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW((void)table.render());
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quote\"inside", "line\nbreak"});
  const std::string out = csv.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, WriteFileRoundTrip) {
  CsvWriter csv({"h"});
  csv.add_row({"v"});
  const std::string path = testing::TempDir() + "/polaris_csv_test.csv";
  csv.write_file(path);
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  fclose(f);
}

TEST(Csv, WriteFileFailsOnBadPath) {
  CsvWriter csv({"h"});
  EXPECT_THROW(csv.write_file("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Fileio, WriteFileAtomicWritesAndOverwrites) {
  const std::string path = testing::TempDir() + "/polaris_atomic_test.txt";
  write_file_atomic(path, "first contents\n");
  EXPECT_EQ(slurp(path), "first contents\n");
  // Overwrite: the target is replaced whole, never appended or truncated.
  write_file_atomic(path, "second");
  EXPECT_EQ(slurp(path), "second");
  std::remove(path.c_str());
}

TEST(Fileio, WriteFileAtomicFailsCleanlyOnBadDirectory) {
  EXPECT_THROW(write_file_atomic("/nonexistent_dir_xyz/out.txt", "x"),
               std::runtime_error);
}

TEST(Fileio, WriteFileAtomicLeavesNoTempFilesBehind) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "/polaris_atomic_dir";
  fs::create_directories(dir);
  write_file_atomic(dir + "/out.txt", "payload");
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  // Only the target: the temp file was renamed over it, not left behind.
  EXPECT_EQ(entries, 1u);
  EXPECT_EQ(slurp(dir + "/out.txt"), "payload");
  fs::remove_all(dir);
}

}  // namespace
