#include <gtest/gtest.h>

#include "circuits/arith.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;

/// Packs an unsigned integer into the simulator's input word layout (all 64
/// lanes broadcast) and reads back an output group as an integer (lane 0).
class WordIo {
 public:
  explicit WordIo(const netlist::Netlist& nl) : nl_(nl), sim_(nl, 3) {}

  std::vector<std::uint64_t> run(std::span<const std::uint64_t> operands,
                                 std::span<const std::size_t> widths_in,
                                 std::span<const std::size_t> widths_out) {
    std::vector<bool> bits;
    for (std::size_t op = 0; op < operands.size(); ++op) {
      for (std::size_t b = 0; b < widths_in[op]; ++b) {
        bits.push_back(((operands[op] >> b) & 1ULL) != 0);
      }
    }
    const auto out_bits = sim_.eval_single(bits);
    std::vector<std::uint64_t> outs;
    std::size_t cursor = 0;
    for (const std::size_t w : widths_out) {
      std::uint64_t value = 0;
      for (std::size_t b = 0; b < w; ++b) {
        value |= static_cast<std::uint64_t>(out_bits[cursor++]) << b;
      }
      outs.push_back(value);
    }
    return outs;
  }

 private:
  const netlist::Netlist& nl_;
  sim::Simulator sim_;
};

TEST(Adder, ExhaustiveFourBit) {
  const auto nl = circuits::make_adder(4);
  WordIo io(nl);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const auto out = io.run(std::array{a, b}, std::array<std::size_t, 2>{4, 4},
                              std::array<std::size_t, 2>{4, 1});
      EXPECT_EQ(out[0], (a + b) & 0xF);
      EXPECT_EQ(out[1], (a + b) >> 4);
    }
  }
}

class MultiplierWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiplierWidths, MatchesReferenceOnRandomOperands) {
  const std::size_t w = GetParam();
  const auto nl = circuits::make_multiplier(w);
  WordIo io(nl);
  util::Xoshiro256 rng(w * 1000 + 1);
  const std::uint64_t mask = (w >= 64) ? ~0ULL : (1ULL << w) - 1;
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const auto out = io.run(std::array{a, b}, std::array<std::size_t, 2>{w, w},
                            std::array<std::size_t, 1>{2 * w});
    EXPECT_EQ(out[0], circuits::ref_multiply(a, b, w)) << a << " * " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidths,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

TEST(Multiplier, EdgeOperands) {
  const std::size_t w = 8;
  const auto nl = circuits::make_multiplier(w);
  WordIo io(nl);
  for (const auto& [a, b] : {std::pair<std::uint64_t, std::uint64_t>{0, 0},
                            {0, 255},
                            {255, 255},
                            {1, 255},
                            {128, 128}}) {
    const auto out = io.run(std::array{a, b}, std::array<std::size_t, 2>{w, w},
                            std::array<std::size_t, 1>{2 * w});
    EXPECT_EQ(out[0], a * b);
  }
}

TEST(Square, MatchesMultiplierSemantics) {
  const std::size_t w = 7;
  const auto nl = circuits::make_square(w);
  WordIo io(nl);
  for (std::uint64_t a = 0; a < 128; a += 5) {
    const auto out = io.run(std::array{a}, std::array<std::size_t, 1>{w},
                            std::array<std::size_t, 1>{2 * w});
    EXPECT_EQ(out[0], a * a);
  }
}

class DividerWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DividerWidths, MatchesReference) {
  const std::size_t w = GetParam();
  const auto nl = circuits::make_divider(w);
  WordIo io(nl);
  util::Xoshiro256 rng(w * 77);
  const std::uint64_t mask = (1ULL << w) - 1;
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const auto out = io.run(std::array{a, b}, std::array<std::size_t, 2>{w, w},
                            std::array<std::size_t, 2>{w, w});
    const auto want = circuits::ref_divide(a, b, w);
    EXPECT_EQ(out[0], want.quotient) << a << " / " << b;
    EXPECT_EQ(out[1], want.remainder) << a << " % " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DividerWidths, ::testing::Values(3, 4, 6, 8, 12));

TEST(Divider, DivisionByZeroConvention) {
  const std::size_t w = 6;
  const auto nl = circuits::make_divider(w);
  WordIo io(nl);
  for (const std::uint64_t a : {0ULL, 17ULL, 63ULL}) {
    const auto out =
        io.run(std::array<std::uint64_t, 2>{a, 0}, std::array<std::size_t, 2>{w, w},
               std::array<std::size_t, 2>{w, w});
    EXPECT_EQ(out[0], (1ULL << w) - 1);  // q = all ones
    EXPECT_EQ(out[1], a);                // r = dividend
  }
}

TEST(Divider, ExhaustiveFourBit) {
  const std::size_t w = 4;
  const auto nl = circuits::make_divider(w);
  WordIo io(nl);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 1; b < 16; ++b) {
      const auto out = io.run(std::array{a, b}, std::array<std::size_t, 2>{w, w},
                              std::array<std::size_t, 2>{w, w});
      EXPECT_EQ(out[0], a / b);
      EXPECT_EQ(out[1], a % b);
    }
  }
}

class SqrtWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SqrtWidths, MatchesReference) {
  const std::size_t w = GetParam();
  const auto nl = circuits::make_sqrt(w);
  WordIo io(nl);
  util::Xoshiro256 rng(w * 13);
  const std::uint64_t mask = (w >= 64) ? ~0ULL : (1ULL << w) - 1;
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t a = rng() & mask;
    const auto out = io.run(std::array{a}, std::array<std::size_t, 1>{w},
                            std::array<std::size_t, 2>{w / 2, w / 2 + 1});
    const auto want = circuits::ref_sqrt(a, w);
    EXPECT_EQ(out[0], want.root) << "sqrt(" << a << ")";
    EXPECT_EQ(out[1], want.remainder);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SqrtWidths, ::testing::Values(4, 6, 8, 12, 16));

TEST(Sqrt, ReferenceIsIntegerSquareRoot) {
  // root^2 + rem == a and (root+1)^2 > a for every input.
  for (std::uint64_t a = 0; a < 4096; a += 7) {
    const auto r = circuits::ref_sqrt(a, 12);
    EXPECT_EQ(r.root * r.root + r.remainder, a);
    EXPECT_GT((r.root + 1) * (r.root + 1), a);
  }
}

TEST(Sqrt, RejectsOddWidth) {
  EXPECT_THROW((void)circuits::make_sqrt(7), std::invalid_argument);
}

TEST(Arith, GateCountsScaleQuadratically) {
  const auto m8 = circuits::make_multiplier(8);
  const auto m16 = circuits::make_multiplier(16);
  EXPECT_GT(m16.gate_count(), 3 * m8.gate_count());
  EXPECT_LT(m16.gate_count(), 6 * m8.gate_count());
}

}  // namespace
