#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/random_logic.hpp"
#include "graph/graph.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::GateId;
using netlist::NetId;

netlist::Netlist chain_netlist(int length) {
  netlist::Netlist nl;
  NetId n = nl.add_input("a");
  for (int i = 0; i < length; ++i) n = nl.add_cell(CellType::kNot, {n});
  nl.mark_output(n);
  return nl;
}

TEST(GraphView, NeighborsAreUndirected) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_cell(CellType::kAnd, {a, b});
  nl.mark_output(y);
  const graph::GraphView g(nl);
  const GateId and_gate = nl.net(y).driver;
  // AND sees both input drivers; each input driver sees the AND back.
  EXPECT_EQ(g.degree(and_gate), 2u);
  EXPECT_TRUE(g.adjacent(and_gate, nl.net(a).driver));
  EXPECT_TRUE(g.adjacent(nl.net(a).driver, and_gate));
  EXPECT_FALSE(g.adjacent(nl.net(a).driver, nl.net(b).driver));
}

TEST(GraphView, DeduplicatesParallelEdges) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellType::kXor, {a, a});  // same net twice
  nl.mark_output(y);
  const graph::GraphView g(nl);
  EXPECT_EQ(g.degree(nl.net(y).driver), 1u);
}

TEST(GraphView, FanoutCreatesEdges) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_cell(CellType::kNot, {a});
  const NetId y = nl.add_cell(CellType::kNot, {a});
  nl.mark_output(x);
  nl.mark_output(y);
  const graph::GraphView g(nl);
  EXPECT_EQ(g.degree(nl.net(a).driver), 2u);
}

TEST(Bfs, ChainOrderIsByDistance) {
  const auto nl = chain_netlist(6);
  const graph::GraphView g(nl);
  // start from the middle gate (id 3 = third NOT).
  const auto hood = graph::bfs_neighborhood(g, 3, 4);
  ASSERT_EQ(hood.size(), 4u);
  // distance-1 nodes first (2 and 4), then distance-2 (1 and 5).
  EXPECT_TRUE((hood[0] == 2 && hood[1] == 4) || (hood[0] == 4 && hood[1] == 2));
  EXPECT_TRUE((hood[2] == 1 && hood[3] == 5) || (hood[2] == 5 && hood[3] == 1));
}

TEST(Bfs, ExcludesStartAndHonorsLimit) {
  const auto nl = chain_netlist(10);
  const graph::GraphView g(nl);
  const auto hood = graph::bfs_neighborhood(g, 0, 3);
  EXPECT_EQ(hood.size(), 3u);
  EXPECT_TRUE(std::find(hood.begin(), hood.end(), 0u) == hood.end());
}

TEST(Bfs, SmallComponentExhausts) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_cell(CellType::kNot, {a}));
  const graph::GraphView g(nl);
  const auto hood = graph::bfs_neighborhood(g, 0, 10);
  EXPECT_EQ(hood.size(), 1u);  // only the NOT is reachable
}

TEST(Bfs, ZeroLimitIsEmpty) {
  const auto nl = chain_netlist(3);
  const graph::GraphView g(nl);
  EXPECT_TRUE(graph::bfs_neighborhood(g, 0, 0).empty());
}

TEST(Bfs, ScratchReuseMatchesFreshScratch) {
  circuits::RandomLogicConfig config;
  config.gates = 200;
  config.seed = 3;
  const auto nl = circuits::make_random_logic(config);
  const graph::GraphView g(nl);
  graph::BfsScratch scratch;
  for (GateId start = 0; start < nl.gate_count(); start += 7) {
    const auto with_scratch = graph::bfs_neighborhood(g, start, 7, scratch);
    const auto fresh = graph::bfs_neighborhood(g, start, 7);
    EXPECT_EQ(with_scratch, fresh) << "start " << start;
  }
}

TEST(Bfs, DeterministicAcrossCalls) {
  circuits::RandomLogicConfig config;
  config.gates = 120;
  config.seed = 9;
  const auto nl = circuits::make_random_logic(config);
  const graph::GraphView g(nl);
  const auto first = graph::bfs_neighborhood(g, 50, 7);
  const auto second = graph::bfs_neighborhood(g, 50, 7);
  EXPECT_EQ(first, second);
}

}  // namespace
