#include <gtest/gtest.h>

#include "analysis/ppa.hpp"
#include "circuits/arith.hpp"
#include "masking/masking.hpp"
#include "netlist/netlist.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::NetId;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

TEST(Ppa, ChainDelayIsSumOfStageDelays) {
  netlist::Netlist nl;
  NetId n = nl.add_input("a");
  const int stages = 5;
  for (int i = 0; i < stages - 1; ++i) n = nl.add_cell(CellType::kNot, {n});
  const NetId last = nl.add_cell(CellType::kNot, {n});
  nl.mark_output(last);
  const auto report = analysis::analyze(nl, lib(), {.activity_cycles = 4});
  // Each NOT has fanout 1 except the last (fanout 0).
  const double per_stage = lib().delay(CellType::kNot, 1, 1);
  const double last_stage = lib().delay(CellType::kNot, 1, 0);
  EXPECT_NEAR(report.delay_ns * 1000.0, 4 * per_stage + last_stage, 1e-9);
}

TEST(Ppa, AreaIsSumOfCellAreas) {
  const auto nl = circuits::make_adder(8);
  const auto report = analysis::analyze(nl, lib(), {.activity_cycles = 4});
  double expect = 0.0;
  for (const auto& gate : nl.gates()) {
    expect += lib().area(gate.type, gate.inputs.size());
  }
  EXPECT_NEAR(report.area_um2, expect, 1e-9);
}

TEST(Ppa, PowerScalesWithClock) {
  const auto nl = circuits::make_multiplier(8);
  const auto slow = analysis::analyze(nl, lib(), {.activity_cycles = 64, .clock_mhz = 100});
  const auto fast = analysis::analyze(nl, lib(), {.activity_cycles = 64, .clock_mhz = 200});
  EXPECT_NEAR(fast.dynamic_power_mw, 2.0 * slow.dynamic_power_mw, 1e-9);
  EXPECT_DOUBLE_EQ(fast.static_power_mw, slow.static_power_mw);
  EXPECT_NEAR(fast.power_mw, fast.dynamic_power_mw + fast.static_power_mw, 1e-12);
}

TEST(Ppa, MaskingIncreasesAllThreeMetrics) {
  const auto nl = circuits::make_multiplier(8);
  std::vector<netlist::GateId> targets;
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    if (netlist::is_maskable(nl.gate(g).type)) targets.push_back(g);
  }
  const auto masked = masking::apply_masking(nl, targets).design;
  const auto before = analysis::analyze(nl, lib(), {.activity_cycles = 32});
  const auto after = analysis::analyze(masked, lib(), {.activity_cycles = 32});
  EXPECT_GT(after.area_um2, 2.0 * before.area_um2);
  EXPECT_GT(after.power_mw, before.power_mw);
  EXPECT_GT(after.delay_ns, before.delay_ns);
}

TEST(Ppa, SequentialDesignAnalyzes) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_cell(CellType::kXor, {a, q});
  nl.add_cell_driving(CellType::kDff, std::array{d}, q);
  nl.mark_output(q);
  const auto report = analysis::analyze(nl, lib(), {.activity_cycles = 16});
  EXPECT_GT(report.area_um2, 0.0);
  EXPECT_GT(report.delay_ns, 0.0);
  EXPECT_GT(report.power_mw, 0.0);
}

TEST(Ppa, DeterministicForSeed) {
  const auto nl = circuits::make_adder(8);
  const auto a = analysis::analyze(nl, lib(), {.activity_cycles = 32, .seed = 5});
  const auto b = analysis::analyze(nl, lib(), {.activity_cycles = 32, .seed = 5});
  EXPECT_DOUBLE_EQ(a.power_mw, b.power_mw);
}

}  // namespace
