// Golden-value regression tests: fixed-seed TVLA t-statistics and
// score_gates outputs checked against CSVs committed under tests/golden/.
// Their job is to make numeric drift LOUD: an engine/scheduler/model
// refactor that changes any double - even in the last bit - fails here,
// instead of silently shifting every paper table.
//
// Values are written with %.17g (lossless double round-trip). TVLA series
// (pure IEEE arithmetic) are compared bit-exactly; model-score series get
// a 64-ulp budget because their exp/log path varies by libm (see
// check_series). To regenerate after an *intentional* numeric change:
//   POLARIS_UPDATE_GOLDEN=1 ./test_golden
// then commit the rewritten CSVs with the change that explains them.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"

namespace {

using namespace polaris;

const techlib::TechLibrary& lib() {
  static const auto instance = techlib::TechLibrary::default_library();
  return instance;
}

bool update_mode() {
  const char* env = std::getenv("POLARIS_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

std::string golden_path(const std::string& name) {
  return std::string(POLARIS_GOLDEN_DIR) + "/" + name;
}

/// One (index, value) series. CSV layout: header line, then `<index>,<v17>`
/// rows - no quoting needed, values never contain commas.
void write_series(const std::string& name, const std::string& header,
                  const std::vector<double>& values) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out) << "cannot write " << golden_path(name);
  out << header << "\n";
  for (std::size_t i = 0; i < values.size(); ++i) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%zu,%.17g", i, values[i]);
    out << buffer << "\n";
  }
}

std::vector<double> read_series(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in) << "missing golden file " << golden_path(name)
                  << " (regenerate with POLARIS_UPDATE_GOLDEN=1)";
  std::vector<double> values;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    values.push_back(std::strtod(line.c_str() + comma + 1, nullptr));
  }
  return values;
}

/// Monotone mapping of the double line onto integers: adjacent doubles
/// differ by 1, -0.0 and +0.0 by 1, negatives sort below positives.
std::uint64_t float_order(double x) {
  const auto bits = std::bit_cast<std::uint64_t>(x);
  return (bits & (1ULL << 63)) ? ~bits : bits | (1ULL << 63);
}

std::uint64_t ulp_distance(double a, double b) {
  const std::uint64_t oa = float_order(a), ob = float_order(b);
  return oa > ob ? oa - ob : ob - oa;
}

/// max_ulps = 0: bit-exact (the TVLA series - pure IEEE +,-,*,/,sqrt, so
/// identical on every platform; a +0.0 -> -0.0 flip fails). Nonzero: the
/// model-score series, whose training path runs std::exp/std::log -
/// transcendentals are not correctly rounded, so their last-ulp spread
/// varies across libm implementations and gets amplified by the boosting
/// accumulation. 64 ulps (~1.4e-14 relative) absorbs that while staying
/// orders of magnitude below any real algorithmic drift.
void check_series(const std::string& name, const std::string& header,
                  const std::vector<double>& actual,
                  std::uint64_t max_ulps = 0) {
  if (update_mode()) {
    write_series(name, header, actual);
    return;
  }
  const auto golden = read_series(name);
  ASSERT_EQ(golden.size(), actual.size()) << name << ": series length drifted";
  for (std::size_t i = 0; i < actual.size(); ++i) {
    // %.17g round-trips every double (sign of zero included), so the
    // comparison is over exact bit patterns, not re-parsed approximations.
    EXPECT_LE(ulp_distance(golden[i], actual[i]), max_ulps)
        << name << " index " << i << " drifted (was " << golden[i] << ", now "
        << actual[i] << ")";
  }
}

// --- TVLA t-statistics -------------------------------------------------------

tvla::TvlaConfig tvla_golden_config() {
  tvla::TvlaConfig config;
  config.traces = 1024;
  config.noise_std_fj = 1.0;
  config.seed = 20260728;
  config.threads = 0;  // results are thread-invariant; any value is the same
  return config;
}

TEST(Golden, TvlaSquare) {
  const auto design = circuits::get_design("square", 0.4);
  const auto report = tvla::run_fixed_vs_random(design.netlist, lib(),
                                                tvla_golden_config());
  check_series("tvla_square.csv", "gate,t", report.t_values());
}

TEST(Golden, TvlaMemctrlSequential) {
  // A sequential design: covers the multi-cycle sampling path and the
  // cycles_per_batch batch layout.
  const auto design = circuits::get_design("memctrl", 0.5);
  auto config = tvla_golden_config();
  config.cycles_per_batch = 8;
  const auto report =
      tvla::run_fixed_vs_random(design.netlist, lib(), config);
  check_series("tvla_memctrl.csv", "gate,t", report.t_values());
}

// --- score_gates through a fixed-seed trained model --------------------------

/// Small but real: Algorithm 1 on two training designs, AdaBoost fit, rule
/// extraction - every stage that could drift feeds the scores checked here.
const core::Polaris& golden_polaris() {
  static const core::Polaris instance = [] {
    core::PolarisConfig config;
    config.mask_size = 30;
    config.locality = 3;
    config.iterations = 3;
    config.model = core::ModelKind::kAdaBoost;
    config.model_rounds = 25;
    config.tvla.traces = 512;
    config.tvla.noise_std_fj = 1.0;
    config.seed = 9;
    config.tvla.seed = 9;
    core::Polaris polaris(config);
    const auto training = circuits::training_suite();
    (void)polaris.train(std::span(training.data(), 2), lib());
    return polaris;
  }();
  return instance;
}

TEST(Golden, ScoreGatesSquareModel) {
  const auto design = circuits::get_design("square", 0.4);
  check_series("score_square_model.csv", "gate,score",
               golden_polaris().score_gates(design,
                                            core::InferenceMode::kModel),
               /*max_ulps=*/64);
}

TEST(Golden, ScoreGatesVoterModelPlusRules) {
  // The rule-augmented path additionally locks the extracted RuleSet.
  const auto design = circuits::get_design("voter", 0.3);
  check_series("score_voter_rules.csv", "gate,score",
               golden_polaris().score_gates(
                   design, core::InferenceMode::kModelPlusRules),
               /*max_ulps=*/64);
}

}  // namespace
