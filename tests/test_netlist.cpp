#include <gtest/gtest.h>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"

namespace {

using namespace polaris::netlist;

TEST(CellType, RoundTripNames) {
  for (std::size_t t = 0; t < kCellTypeCount; ++t) {
    const auto type = static_cast<CellType>(t);
    EXPECT_EQ(cell_type_from_string(to_string(type)), type);
  }
}

TEST(CellType, VerilogAliases) {
  EXPECT_EQ(cell_type_from_string("INV"), CellType::kNot);
  EXPECT_EQ(cell_type_from_string("buff"), CellType::kBuf);
  EXPECT_EQ(cell_type_from_string("NAND"), CellType::kNand);
  EXPECT_THROW(cell_type_from_string("frobnicate"), std::invalid_argument);
}

TEST(CellType, Predicates) {
  EXPECT_TRUE(is_source(CellType::kInput));
  EXPECT_TRUE(is_source(CellType::kRand));
  EXPECT_FALSE(is_source(CellType::kNand));
  EXPECT_TRUE(is_combinational(CellType::kMux));
  EXPECT_FALSE(is_combinational(CellType::kDff));
  EXPECT_TRUE(is_maskable(CellType::kXor));
  EXPECT_FALSE(is_maskable(CellType::kNot));
  EXPECT_FALSE(is_maskable(CellType::kDff));
}

TEST(EvalCell, TruthTablesBinary) {
  const bool f = false, t = true;
  const bool vals[2] = {f, t};
  for (const bool a : vals) {
    for (const bool b : vals) {
      const bool in[2] = {a, b};
      EXPECT_EQ(eval_cell(CellType::kAnd, in), a && b);
      EXPECT_EQ(eval_cell(CellType::kOr, in), a || b);
      EXPECT_EQ(eval_cell(CellType::kNand, in), !(a && b));
      EXPECT_EQ(eval_cell(CellType::kNor, in), !(a || b));
      EXPECT_EQ(eval_cell(CellType::kXor, in), a != b);
      EXPECT_EQ(eval_cell(CellType::kXnor, in), a == b);
    }
  }
}

TEST(EvalCell, MuxAndUnary) {
  // mux inputs: {sel, a, b} -> sel ? b : a
  for (int sel = 0; sel < 2; ++sel) {
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const bool in[3] = {sel != 0, a != 0, b != 0};
        EXPECT_EQ(eval_cell(CellType::kMux, in), sel != 0 ? b != 0 : a != 0);
      }
    }
  }
  const bool one[1] = {true};
  EXPECT_FALSE(eval_cell(CellType::kNot, one));
  EXPECT_TRUE(eval_cell(CellType::kBuf, one));
}

TEST(EvalCell, NaryGates) {
  const bool in3[3] = {true, true, false};
  EXPECT_FALSE(eval_cell(CellType::kAnd, in3));
  EXPECT_TRUE(eval_cell(CellType::kNand, in3));
  EXPECT_TRUE(eval_cell(CellType::kOr, in3));
  EXPECT_FALSE(eval_cell(CellType::kXor, in3));  // two ones
  const bool in4[4] = {true, true, true, false};
  EXPECT_TRUE(eval_cell(CellType::kXor, in4));  // three ones
}

TEST(EvalCellWord, MatchesScalarLanewise) {
  // Lane-0 semantics agree with eval_cell for every type and input combo.
  for (const CellType type : {CellType::kAnd, CellType::kOr, CellType::kNand,
                              CellType::kNor, CellType::kXor, CellType::kXnor}) {
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const bool sin[2] = {a != 0, b != 0};
        const std::uint64_t win[2] = {a != 0 ? ~0ULL : 0, b != 0 ? ~0ULL : 0};
        EXPECT_EQ((eval_cell_word(type, win) & 1ULL) != 0, eval_cell(type, sin))
            << to_string(type) << " " << a << b;
      }
    }
  }
}

TEST(Netlist, BuildAndQuery) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_cell(CellType::kNand, {a, b}, "y");
  nl.mark_output(y);
  EXPECT_EQ(nl.gate_count(), 3u);  // 2 inputs + 1 nand
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.net(y).driver, 2u);
  EXPECT_EQ(nl.net(a).fanouts.size(), 1u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, RejectsDoubleDriver) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_cell_driving(CellType::kBuf, std::array{a}, a),
               std::invalid_argument);
}

TEST(Netlist, RejectsBadArity) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW((void)nl.add_cell(CellType::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW((void)nl.add_cell(CellType::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW((void)nl.add_cell(CellType::kMux, {a, a}), std::invalid_argument);
}

TEST(Netlist, ValidateCatchesUndrivenNet) {
  Netlist nl;
  (void)nl.add_net("floating");
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, DetectsCombinationalCycle) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId loop = nl.add_net("loop");
  // gate reads its own output net -> cycle
  nl.add_cell_driving(CellType::kAnd, std::array{a, loop}, loop);
  EXPECT_THROW((void)nl.topological_order(), std::runtime_error);
}

TEST(Netlist, DffBreaksCycle) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.add_net("q");
  const NetId d = nl.add_cell(CellType::kXor, {a, q}, "d");
  nl.add_cell_driving(CellType::kDff, std::array{d}, q);
  EXPECT_NO_THROW(nl.validate());
  const auto order = nl.topological_order();
  EXPECT_EQ(order.size(), nl.gate_count());
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_cell(CellType::kAnd, {a, b});
  const NetId y = nl.add_cell(CellType::kOr, {x, a});
  nl.mark_output(y);
  const auto order = nl.topological_order();
  std::vector<std::size_t> pos(nl.gate_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[nl.net(x).driver], pos[nl.net(y).driver]);
}

TEST(Netlist, LevelsIncreaseAlongChains) {
  Netlist nl;
  NetId n = nl.add_input("a");
  std::vector<NetId> chain{n};
  for (int i = 0; i < 5; ++i) {
    n = nl.add_cell(CellType::kNot, {n});
    chain.push_back(n);
  }
  const auto levels = nl.levels();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(levels[nl.net(chain[i]).driver], i);
  }
}

TEST(Netlist, MarkInputValidates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellType::kNot, {a});
  EXPECT_THROW(nl.mark_input(y), std::invalid_argument);
}

TEST(Stats, CountsAndDepth) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.add_cell(CellType::kNand, {a, b});
  const NetId y = nl.add_cell(CellType::kNot, {x});
  nl.mark_output(y);
  const auto stats = compute_stats(nl);
  EXPECT_EQ(stats.gates, 4u);
  EXPECT_EQ(stats.combinational, 2u);
  EXPECT_EQ(stats.inputs, 2u);
  EXPECT_EQ(stats.outputs, 1u);
  EXPECT_EQ(stats.depth, 2u);
  EXPECT_EQ(stats.type_histogram[static_cast<std::size_t>(CellType::kNand)], 1u);
  EXPECT_FALSE(to_string(stats).empty());
}

}  // namespace
