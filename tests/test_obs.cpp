// polaris::obs in isolation: counter exactness under concurrency, the
// log-bucket histogram's error bound, snapshot merge algebra, and the
// tracer's JSON output (valid, nested, disabled-by-default). Everything
// here uses LOCAL registries except the tracer tests - the tracer is
// process-global, so those tests start/stop it around their own spans.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace {

using namespace polaris;

// --- counters ----------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  obs::Registry registry;
  auto& counter = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  // Sharded relaxed increments lose nothing: the total is exact, not
  // approximate.
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsCounter, SameNameReturnsSameCounter) {
  obs::Registry registry;
  registry.counter("a").add(2);
  registry.counter("a").add(3);
  EXPECT_EQ(registry.counter("a").value(), 5u);
  EXPECT_EQ(registry.snapshot().counter_value("a"), 5u);
  EXPECT_EQ(registry.snapshot().counter_value("missing"), 0u);
}

// --- histograms --------------------------------------------------------------

TEST(ObsHistogram, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < obs::Histogram::kLinearBuckets; ++v) {
    const std::size_t index = obs::Histogram::bucket_index(v);
    EXPECT_EQ(obs::Histogram::bucket_lower(index), v);
    EXPECT_EQ(obs::Histogram::bucket_upper(index), v + 1);
  }
}

TEST(ObsHistogram, BucketsContainTheirValuesWithBoundedWidth) {
  // Sweep a wide range; every value must land in a bucket that contains
  // it, and above the linear range the bucket width must stay within 25%
  // of the lower bound (the documented resolution of 4 sub-buckets per
  // power of two).
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v = v * 3 + 1) {
    const std::size_t index = obs::Histogram::bucket_index(v);
    const std::uint64_t lower = obs::Histogram::bucket_lower(index);
    const std::uint64_t upper = obs::Histogram::bucket_upper(index);
    ASSERT_LE(lower, v) << "value " << v;
    ASSERT_GT(upper, v) << "value " << v;
    if (v >= obs::Histogram::kLinearBuckets) {
      EXPECT_LE((upper - lower) * 4, lower) << "value " << v;
    }
  }
}

TEST(ObsHistogram, PercentileWithinBucketBound) {
  obs::Registry registry;
  auto& histogram = registry.histogram("h");
  constexpr std::uint64_t kValue = 1000;
  for (int i = 0; i < 100; ++i) histogram.record(kValue);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& h = snapshot.histograms[0];
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, 100 * kValue);
  // Every sample was kValue, so any percentile is the midpoint of
  // kValue's bucket: within 12.5% of the true value.
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_NEAR(h.percentile(p), static_cast<double>(kValue),
                0.125 * static_cast<double>(kValue))
        << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(kValue));
}

TEST(ObsHistogram, PercentilesAreExactInTheLinearRange) {
  // Samples below kLinearBuckets land in width-1 buckets; a percentile
  // there must return the exact sample value, not the bucket midpoint
  // (p50 of all-zero latencies is 0, not 0.5).
  for (const std::uint64_t value :
       {std::uint64_t{0}, std::uint64_t{3},
        static_cast<std::uint64_t>(obs::Histogram::kLinearBuckets - 1)}) {
    obs::Registry registry;
    auto& histogram = registry.histogram("h");
    for (int i = 0; i < 50; ++i) histogram.record(value);
    const auto snapshot = registry.snapshot();
    const auto& h = snapshot.histograms[0];
    for (const double p : {0.0, 0.5, 0.99, 1.0}) {
      EXPECT_DOUBLE_EQ(h.percentile(p), static_cast<double>(value))
          << "value=" << value << " p=" << p;
    }
  }
}

TEST(ObsCounter, SubTracksGaugeOccupancy) {
  obs::Registry registry;
  auto& gauge = registry.counter("cache.bytes");
  gauge.add(1000);
  gauge.sub(250);
  gauge.add(50);
  gauge.sub(800);
  EXPECT_EQ(gauge.value(), 0u);
}

TEST(ObsHistogram, PercentilesAreMonotonic) {
  obs::Registry registry;
  auto& histogram = registry.histogram("h");
  std::uint64_t value = 1;
  for (int i = 0; i < 200; ++i) {
    histogram.record(value);
    value = value * 7 % 100000 + 1;
  }
  const auto& h = registry.snapshot().histograms[0];
  EXPECT_LE(h.percentile(0.50), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

// --- snapshot algebra --------------------------------------------------------

obs::Snapshot make_snapshot(std::uint64_t counter_base,
                            std::uint64_t histogram_seed) {
  obs::Registry registry;
  registry.counter("x").add(counter_base);
  registry.counter("y." + std::to_string(counter_base % 3)).add(1);
  auto& histogram = registry.histogram("lat_us");
  std::uint64_t value = histogram_seed;
  for (int i = 0; i < 50; ++i) {
    histogram.record(value % 50000);
    value = value * 31 + 7;
  }
  return registry.snapshot();
}

void expect_snapshots_equal(const obs::Snapshot& a, const obs::Snapshot& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].name, b.counters[i].name);
    EXPECT_EQ(a.counters[i].value, b.counters[i].value);
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].name, b.histograms[i].name);
    EXPECT_EQ(a.histograms[i].count, b.histograms[i].count);
    EXPECT_EQ(a.histograms[i].sum, b.histograms[i].sum);
    EXPECT_EQ(a.histograms[i].buckets, b.histograms[i].buckets);
  }
}

TEST(ObsSnapshot, MergeIsAssociative) {
  const auto a = make_snapshot(10, 3);
  const auto b = make_snapshot(11, 17);
  const auto c = make_snapshot(12, 101);

  obs::Snapshot left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  obs::Snapshot bc = b;     // a + (b + c)
  bc.merge(c);
  obs::Snapshot right = a;
  right.merge(bc);
  expect_snapshots_equal(left, right);

  // And commutative.
  obs::Snapshot swapped = b;
  swapped.merge(a);
  swapped.merge(c);
  expect_snapshots_equal(left, swapped);
}

TEST(ObsSnapshot, SubtractRecoversIntervalDelta) {
  obs::Registry registry;
  auto& histogram = registry.histogram("h");
  histogram.record(100);
  histogram.record(2000);
  const auto earlier = registry.snapshot();
  histogram.record(100);
  histogram.record(123456);
  auto delta = registry.snapshot().histograms[0];
  delta.subtract(earlier.histograms[0]);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 100u + 123456u);
  // The interval's p99 reflects only the new samples.
  EXPECT_NEAR(delta.percentile(0.99), 123456.0, 0.125 * 123456.0);
}

TEST(ObsSnapshot, JsonFragmentAndPrometheusRender) {
  obs::Registry registry;
  registry.counter("cache.hits").add(3);
  registry.histogram("pool.task_us").record(250);
  const auto snapshot = registry.snapshot();

  const std::string json = snapshot.json_fragment();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"cache.hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"pool.task_us\":{"), std::string::npos);

  const std::string prom = snapshot.prometheus("polaris_");
  EXPECT_NE(prom.find("polaris_cache_hits 3"), std::string::npos);
  EXPECT_NE(prom.find("polaris_pool_task_us_count 1"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.95\""), std::string::npos);
}

// --- runtime info ------------------------------------------------------------

TEST(ObsRuntimeInfo, ReportsPlausibleIdentity) {
  const auto info = obs::runtime_info();
  EXPECT_TRUE(info.build_type == "release" || info.build_type == "debug");
  EXPECT_FALSE(info.simd.empty());
  EXPECT_GE(info.lane_words, 1u);
}

// --- tracer ------------------------------------------------------------------

/// Minimal structural check that `json` parses as one object with a
/// traceEvents array (a full parser lives in CI: python3 -m json.tool).
int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ObsTracer, DisabledByDefaultAndSpansCostNothingVisible) {
  EXPECT_FALSE(obs::Tracer::global().enabled());
  {
    obs::Span span("idle", "test");
    span.arg("k", std::uint64_t{1});
  }
  // Still disabled, and a subsequent start() sees none of the above.
  auto& tracer = obs::Tracer::global();
  tracer.start();
  std::size_t events = 0;
  (void)tracer.stop_to_json(&events);
  EXPECT_EQ(events, 0u);
}

TEST(ObsTracer, EmitsValidNestedSpans) {
  auto& tracer = obs::Tracer::global();
  tracer.start();
  {
    obs::Span outer("outer", "test");
    outer.arg("design", "des3").arg("gates", std::uint64_t{42});
    {
      obs::Span inner("inner", "test");
      inner.arg("shard", std::uint64_t{0});
    }
  }
  std::size_t events = 0;
  const std::string json = tracer.stop_to_json(&events);
  EXPECT_EQ(events, 2u);
  EXPECT_FALSE(tracer.enabled());

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"design\":\"des3\",\"gates\":42}"),
            std::string::npos);

  // Nesting: events are sorted by start time, so "outer" precedes "inner",
  // and the outer duration contains the inner one (same thread, RAII).
  const std::size_t outer_pos = json.find("\"name\":\"outer\"");
  const std::size_t inner_pos = json.find("\"name\":\"inner\"");
  EXPECT_LT(outer_pos, inner_pos);
  auto duration_after = [&](std::size_t pos) {
    const std::size_t dur = json.find("\"dur\":", pos);
    return std::stod(json.substr(dur + 6));
  };
  auto timestamp_after = [&](std::size_t pos) {
    const std::size_t ts = json.find("\"ts\":", pos);
    return std::stod(json.substr(ts + 5));
  };
  EXPECT_LE(timestamp_after(outer_pos), timestamp_after(inner_pos));
  EXPECT_GE(timestamp_after(outer_pos) + duration_after(outer_pos),
            timestamp_after(inner_pos) + duration_after(inner_pos));
}

TEST(ObsTracer, AsyncSpansMatchAcrossThreads) {
  auto& tracer = obs::Tracer::global();
  tracer.start();
  const std::uint64_t id = obs::Tracer::next_async_id();
  obs::TraceArgs args;
  args.add("traces", std::uint64_t{8192});
  tracer.async_begin("campaign", "tvla", id, std::move(args).str());
  std::thread([&] { tracer.async_end("campaign", "tvla", id); }).join();
  std::size_t events = 0;
  const std::string json = tracer.stop_to_json(&events);
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"b\""), 1);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"e\""), 1);
  // Begin and end carry the same id so Perfetto joins them.
  const std::size_t first_id = json.find("\"id\":\"0x");
  ASSERT_NE(first_id, std::string::npos);
  const std::string id_token = json.substr(first_id, json.find('"', first_id + 6) - first_id);
  EXPECT_EQ(count_occurrences(json, id_token), 2);
}

TEST(ObsLog, RateLimitCountsSuppressedLines) {
  const std::uint64_t before =
      obs::Registry::global().snapshot().counter_value("obs.log_suppressed");
  // Hammer well past the burst budget; the bucket admits at most burst +
  // refill-during-the-loop lines and counts the rest instead of flooding.
  for (int i = 0; i < 200; ++i) {
    obs::log("test", "rate limit probe " + std::to_string(i));
  }
  const std::uint64_t after =
      obs::Registry::global().snapshot().counter_value("obs.log_suppressed");
  EXPECT_GE(after - before, 100u);
}

TEST(ObsSnapshot, SubtractKeepsMetricsBornInsideTheInterval) {
  // A metric first touched AFTER the earlier snapshot has no earlier row
  // to subtract - the whole-snapshot subtract must keep its full value,
  // not drop or corrupt it.
  obs::Registry registry;
  registry.counter("old").add(3);
  const auto earlier = registry.snapshot();
  registry.counter("old").add(4);
  registry.counter("born_late").add(9);
  registry.histogram("h_late").record(50);
  auto delta = registry.snapshot();
  delta.subtract(earlier);
  EXPECT_EQ(delta.counter_value("old"), 4u);
  EXPECT_EQ(delta.counter_value("born_late"), 9u);
  const auto* hist = delta.find_histogram("h_late");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_EQ(hist->sum, 50u);
}

TEST(ObsWallClock, Iso8601TimestampHasTheDocumentedShape) {
  // obs::log prefixes every line with this; scrapers pattern-match it, so
  // the shape is a contract: "YYYY-MM-DDTHH:MM:SS.mmmZ" (24 chars, UTC).
  const std::string stamp = obs::wall_clock_iso8601();
  ASSERT_EQ(stamp.size(), 24u);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[7], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[13], ':');
  EXPECT_EQ(stamp[16], ':');
  EXPECT_EQ(stamp[19], '.');
  EXPECT_EQ(stamp.back(), 'Z');
  for (const std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u,
                              14u, 15u, 17u, 18u, 20u, 21u, 22u}) {
    EXPECT_TRUE(stamp[i] >= '0' && stamp[i] <= '9') << "position " << i;
  }
  // Sanity: the year is the wall clock's, not 1970's.
  EXPECT_GE(stamp.substr(0, 4), "2024");
  // And it agrees with wall_clock_ms to within clock-read jitter.
  EXPECT_GT(obs::wall_clock_ms(), 0);
}

}  // namespace
