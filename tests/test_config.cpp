// PolarisConfig validation (one actionable error per bad knob, enforced at
// Polaris construction and by the CLI), name parsing, serialization, and
// the host-independent config fingerprint.
#include <gtest/gtest.h>

#include <limits>

#include "core/config.hpp"
#include "core/polaris.hpp"
#include "serialize/archive.hpp"

namespace {

using namespace polaris;

TEST(ConfigValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(core::validate(core::PolarisConfig{}));
}

TEST(ConfigValidate, EachBadKnobNamesItself) {
  const struct {
    const char* knob;
    void (*corrupt)(core::PolarisConfig&);
  } cases[] = {
      {"theta_r", [](core::PolarisConfig& c) { c.theta_r = 1.5; }},
      {"theta_r", [](core::PolarisConfig& c) { c.theta_r = -0.1; }},
      {"iterations", [](core::PolarisConfig& c) { c.iterations = 0; }},
      {"mask_size", [](core::PolarisConfig& c) { c.mask_size = 0; }},
      {"locality", [](core::PolarisConfig& c) { c.locality = 0; }},
      {"model_rounds", [](core::PolarisConfig& c) { c.model_rounds = 0; }},
      {"learning_rate", [](core::PolarisConfig& c) { c.learning_rate = 0.0; }},
      {"tvla.traces", [](core::PolarisConfig& c) { c.tvla.traces = 0; }},
      {"tvla.traces", [](core::PolarisConfig& c) { c.tvla.traces = 100; }},
      {"tvla.threshold", [](core::PolarisConfig& c) { c.tvla.threshold = 0.0; }},
      {"tvla.noise_std_fj",
       [](core::PolarisConfig& c) { c.tvla.noise_std_fj = -1.0; }},
      {"coherence_smoothing",
       [](core::PolarisConfig& c) { c.coherence_smoothing = 1.5; }},
      {"min_leak_for_label",
       [](core::PolarisConfig& c) { c.min_leak_for_label = -2.0; }},
      // NaN fails every ordinary comparison - the checks must be written so
      // it still lands in the error branch.
      {"theta_r",
       [](core::PolarisConfig& c) {
         c.theta_r = std::numeric_limits<double>::quiet_NaN();
       }},
      {"learning_rate",
       [](core::PolarisConfig& c) {
         c.learning_rate = std::numeric_limits<double>::quiet_NaN();
       }},
      {"learning_rate",
       [](core::PolarisConfig& c) {
         c.learning_rate = std::numeric_limits<double>::infinity();
       }},
  };
  for (const auto& test_case : cases) {
    core::PolarisConfig config;
    test_case.corrupt(config);
    try {
      core::validate(config);
      FAIL() << test_case.knob << " accepted";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(test_case.knob),
                std::string::npos)
          << "message does not name the knob: " << error.what();
    }
  }
}

TEST(ConfigValidate, ReportsAllProblemsAtOnce) {
  core::PolarisConfig config;
  config.theta_r = 2.0;
  config.iterations = 0;
  config.tvla.traces = 63;
  try {
    core::validate(config);
    FAIL() << "invalid config accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("theta_r"), std::string::npos);
    EXPECT_NE(what.find("iterations"), std::string::npos);
    EXPECT_NE(what.find("tvla.traces"), std::string::npos);
  }
}

TEST(ConfigValidate, PolarisConstructorEnforcesIt) {
  core::PolarisConfig config;
  config.tvla.traces = 1000;  // not a multiple of 64
  EXPECT_THROW(core::Polaris{config}, std::invalid_argument);
}

TEST(ConfigModelKind, ParsesUserSpellings) {
  using core::ModelKind;
  EXPECT_EQ(core::model_kind_from_string("adaboost"), ModelKind::kAdaBoost);
  EXPECT_EQ(core::model_kind_from_string("AdaBoost"), ModelKind::kAdaBoost);
  EXPECT_EQ(core::model_kind_from_string("rf"), ModelKind::kRandomForest);
  EXPECT_EQ(core::model_kind_from_string("random-forest"),
            ModelKind::kRandomForest);
  EXPECT_EQ(core::model_kind_from_string("xgboost"), ModelKind::kXgboost);
  EXPECT_EQ(core::model_kind_from_string("gbdt"), ModelKind::kXgboost);
  EXPECT_EQ(core::model_kind_from_string("tree"), ModelKind::kDecisionTree);
  EXPECT_EQ(core::model_kind_from_string("dt"), ModelKind::kDecisionTree);
  EXPECT_THROW((void)core::model_kind_from_string("svm"),
               std::invalid_argument);
  EXPECT_EQ(core::to_string(ModelKind::kDecisionTree), "DecisionTree");
}

TEST(ConfigModelKind, DecisionTreeIsConstructible) {
  core::PolarisConfig config;
  config.model = core::ModelKind::kDecisionTree;
  EXPECT_EQ(core::make_model(config)->name(), "DecisionTree");
}

TEST(ConfigIo, RoundTripsEveryKnob) {
  core::PolarisConfig config;
  config.mask_size = 77;
  config.locality = 3;
  config.iterations = 12;
  config.theta_r = 0.55;
  config.model = core::ModelKind::kXgboost;
  config.learning_rate = 0.02;
  config.model_rounds = 150;
  config.handle_imbalance = false;
  config.tvla.traces = 1024;
  config.tvla.warmup_cycles = 7;
  config.tvla.cycles_per_batch = 16;
  config.tvla.threshold = 3.5;
  config.tvla.seed = 42;
  config.tvla.threads = 4;
  config.tvla.noise_std_fj = 2.25;
  config.tvla.input_class = {tvla::InputClass::kSensitive,
                             tvla::InputClass::kFixedCommon,
                             tvla::InputClass::kRandomCommon};
  config.tvla.fixed_input = {true, false, true};
  config.min_leak_for_label = 1.75;
  config.scheme = masking::Scheme::kDom;
  config.coherence_smoothing = 0.25;
  config.seed = 9;
  config.threads = 2;

  serialize::Writer out;
  out.begin_chunk("CONF");
  core::write_config(out, config);
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("CONF");
  const auto loaded = core::read_config(in);
  in.exit_chunk();

  EXPECT_EQ(loaded.mask_size, config.mask_size);
  EXPECT_EQ(loaded.locality, config.locality);
  EXPECT_EQ(loaded.iterations, config.iterations);
  EXPECT_EQ(loaded.theta_r, config.theta_r);
  EXPECT_EQ(loaded.model, config.model);
  EXPECT_EQ(loaded.learning_rate, config.learning_rate);
  EXPECT_EQ(loaded.model_rounds, config.model_rounds);
  EXPECT_EQ(loaded.handle_imbalance, config.handle_imbalance);
  EXPECT_EQ(loaded.tvla.traces, config.tvla.traces);
  EXPECT_EQ(loaded.tvla.warmup_cycles, config.tvla.warmup_cycles);
  EXPECT_EQ(loaded.tvla.cycles_per_batch, config.tvla.cycles_per_batch);
  EXPECT_EQ(loaded.tvla.threshold, config.tvla.threshold);
  EXPECT_EQ(loaded.tvla.seed, config.tvla.seed);
  EXPECT_EQ(loaded.tvla.threads, config.tvla.threads);
  EXPECT_EQ(loaded.tvla.noise_std_fj, config.tvla.noise_std_fj);
  EXPECT_EQ(loaded.tvla.input_class, config.tvla.input_class);
  EXPECT_EQ(loaded.tvla.fixed_input, config.tvla.fixed_input);
  EXPECT_EQ(loaded.tvla.fixed_input_b, config.tvla.fixed_input_b);
  EXPECT_EQ(loaded.min_leak_for_label, config.min_leak_for_label);
  EXPECT_EQ(loaded.scheme, config.scheme);
  EXPECT_EQ(loaded.coherence_smoothing, config.coherence_smoothing);
  EXPECT_EQ(loaded.seed, config.seed);
  EXPECT_EQ(loaded.threads, config.threads);
}

TEST(ConfigIo, RoundTripsEarlyStopBudget) {
  core::PolarisConfig config;
  config.tvla.budget.enabled = true;
  config.tvla.budget.min_traces = 768;
  config.tvla.budget.margin = 0.25;

  serialize::Writer out;
  out.begin_chunk("CONF");
  core::write_config(out, config);
  out.end_chunk();
  serialize::Reader in(out.finish());
  in.enter_chunk("CONF");
  const auto loaded = core::read_config(in);
  in.exit_chunk();

  EXPECT_TRUE(loaded.tvla.budget.enabled);
  EXPECT_EQ(loaded.tvla.budget.min_traces, 768u);
  EXPECT_EQ(loaded.tvla.budget.margin, 0.25);
}

TEST(ConfigIo, DisabledBudgetKeepsTheVersion1ByteLayout) {
  // A config without early stopping must serialize exactly as before the
  // budget fields existed - bundles and wire requests stay byte-stable.
  const auto encode = [](const core::PolarisConfig& config) {
    serialize::Writer out;
    out.begin_chunk("CONF");
    core::write_config(out, config);
    out.end_chunk();
    return out.finish();
  };
  core::PolarisConfig disabled;
  core::PolarisConfig enabled;
  enabled.tvla.budget.enabled = true;
  const auto disabled_bytes = encode(disabled);
  const auto enabled_bytes = encode(enabled);
  EXPECT_LT(disabled_bytes.size(), enabled_bytes.size());

  serialize::Reader in(disabled_bytes);
  in.enter_chunk("CONF");
  EXPECT_FALSE(core::read_config(in).tvla.budget.enabled);
  in.exit_chunk();
}

TEST(ConfigValidate, BudgetKnobsAreChecked) {
  core::PolarisConfig config;
  config.tvla.budget.enabled = true;
  config.tvla.budget.min_traces = 0;
  EXPECT_THROW(core::validate(config), std::invalid_argument);
  config.tvla.budget.min_traces = 256;
  config.tvla.budget.margin = -0.5;
  EXPECT_THROW(core::validate(config), std::invalid_argument);
  config.tvla.budget.margin = 0.5;
  core::validate(config);

  // Disabled budgets are inert: their knobs are never reached.
  config.tvla.budget.enabled = false;
  config.tvla.budget.min_traces = 0;
  core::validate(config);
}

TEST(ConfigFingerprint, DisabledBudgetDoesNotChangeIdentity) {
  core::PolarisConfig a;
  core::PolarisConfig b;
  // Knob values behind a disabled budget are unreachable, so they must
  // not perturb the fingerprint (cache keys, bundle identity).
  b.tvla.budget.min_traces = 4096;
  b.tvla.budget.margin = 2.0;
  EXPECT_EQ(core::config_fingerprint(a), core::config_fingerprint(b));

  // Enabling early stopping changes results, so it must change identity.
  b.tvla.budget.enabled = true;
  EXPECT_NE(core::config_fingerprint(a), core::config_fingerprint(b));
}

TEST(ConfigFingerprint, StableAndThreadInvariant) {
  core::PolarisConfig a;
  core::PolarisConfig b;
  EXPECT_EQ(core::config_fingerprint(a), core::config_fingerprint(b));

  // Thread counts never change results, so they must not change identity.
  b.threads = 16;
  b.tvla.threads = 3;
  EXPECT_EQ(core::config_fingerprint(a), core::config_fingerprint(b));

  // Any result-relevant knob must.
  b.theta_r = 0.71;
  EXPECT_NE(core::config_fingerprint(a), core::config_fingerprint(b));
}

}  // namespace
