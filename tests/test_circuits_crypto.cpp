#include <gtest/gtest.h>

#include <string>

#include "circuits/aes_sbox.hpp"
#include "circuits/des.hpp"
#include "circuits/md5.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;

// ---------------------------------------------------------------------------
// DES / 3DES. Known-answer vectors generated with OpenSSL (legacy DES-ECB
// and DES-EDE3-ECB providers).
// ---------------------------------------------------------------------------

struct DesKat {
  std::uint64_t key, plaintext, ciphertext;
};
constexpr DesKat kDesKats[] = {
    {0x133457799BBCDFF1ULL, 0x0123456789ABCDEFULL, 0x85E813540F0AB405ULL},
    {0x626a8f7140f60d05ULL, 0xa10854cfacf3668fULL, 0x7874393603a97effULL},
    {0xc1e5f85509f8fc6aULL, 0x79ee0a96ba48373aULL, 0x520e79c9a1e0eebbULL},
    {0xdc771b2411c317feULL, 0x566f6e38d1c66f15ULL, 0x4807a1a142dd2b5eULL},
    {0x63dace7e74edeba3ULL, 0xfb8a2a9efce63e6bULL, 0x02f867b7d6b297a6ULL},
};

TEST(DesReference, KnownAnswerVectors) {
  for (const auto& kat : kDesKats) {
    EXPECT_EQ(circuits::ref_des(kat.key, kat.plaintext), kat.ciphertext);
  }
}

TEST(DesReference, DecryptInvertsEncrypt) {
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t key = rng();
    const std::uint64_t pt = rng();
    EXPECT_EQ(circuits::ref_des(key, circuits::ref_des(key, pt), true), pt);
  }
}

TEST(DesReference, ReducedRoundsStillInvert) {
  for (const std::size_t rounds : {1u, 4u, 8u}) {
    const std::uint64_t key = 0x0102030405060708ULL;
    const std::uint64_t pt = 0x1122334455667788ULL;
    const std::uint64_t ct = circuits::ref_des(key, pt, false, rounds);
    EXPECT_EQ(circuits::ref_des(key, ct, true, rounds), pt);
  }
}

struct Des3Kat {
  std::uint64_t k1, k2, k3, plaintext, ciphertext;
};
constexpr Des3Kat kDes3Kats[] = {
    {0x63d3910645f874a9ULL, 0x91bdfc5a68ba46d2ULL, 0xb5ff881b862eb342ULL,
     0x816d57c7f2a56f6cULL, 0x40faed5770adf11dULL},
    {0x27dc4f7d6467aa25ULL, 0xd828020472c29af2ULL, 0xfb0f03b0858d185eULL,
     0x49b21d48df89383fULL, 0x4d773926765226f0ULL},
    {0x17c9a6db2d0f846bULL, 0x6ed9ebbcc8f7ae8aULL, 0xea78e4abb7096dbfULL,
     0xca544a24e34a28c5ULL, 0x2a580c990fbe9737ULL},
};

TEST(Des3Reference, KnownAnswerVectors) {
  for (const auto& kat : kDes3Kats) {
    EXPECT_EQ(circuits::ref_des3(kat.k1, kat.k2, kat.k3, kat.plaintext),
              kat.ciphertext);
  }
}

TEST(Des3Reference, DegeneratesToSingleDesWithEqualKeys) {
  const std::uint64_t key = 0x133457799BBCDFF1ULL;
  const std::uint64_t pt = 0x0123456789ABCDEFULL;
  EXPECT_EQ(circuits::ref_des3(key, key, key, pt), circuits::ref_des(key, pt));
}

/// Applies a 64-bit value (FIPS bit 1 = MSB) to a 64-entry LSB-first input
/// word range.
std::vector<bool> unpack64(std::uint64_t value) {
  std::vector<bool> bits(64);
  for (std::size_t i = 0; i < 64; ++i) bits[i] = ((value >> i) & 1ULL) != 0;
  return bits;
}

std::uint64_t pack64(const std::vector<bool>& bits, std::size_t offset = 0) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    value |= static_cast<std::uint64_t>(bits[offset + i]) << i;
  }
  return value;
}

TEST(DesCircuit, MatchesReferenceOnKats) {
  const auto nl = circuits::make_des();
  sim::Simulator sim(nl);
  for (const auto& kat : kDesKats) {
    std::vector<bool> in = unpack64(kat.plaintext);
    const auto key_bits = unpack64(kat.key);
    in.insert(in.end(), key_bits.begin(), key_bits.end());
    EXPECT_EQ(pack64(sim.eval_single(in)), kat.ciphertext);
  }
}

TEST(DesCircuit, ReducedRoundMatchesReference) {
  const auto nl = circuits::make_des(4);
  sim::Simulator sim(nl);
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t key = rng();
    const std::uint64_t pt = rng();
    std::vector<bool> in = unpack64(pt);
    const auto key_bits = unpack64(key);
    in.insert(in.end(), key_bits.begin(), key_bits.end());
    EXPECT_EQ(pack64(sim.eval_single(in)),
              circuits::ref_des(key, pt, false, 4));
  }
}

TEST(Des3Circuit, MatchesReferenceOnKats) {
  const auto nl = circuits::make_des3();
  EXPECT_GT(nl.gate_count(), 10000u);  // a real 48-round 3DES data path
  sim::Simulator sim(nl);
  for (const auto& kat : kDes3Kats) {
    std::vector<bool> in = unpack64(kat.plaintext);
    for (const std::uint64_t k : {kat.k1, kat.k2, kat.k3}) {
      const auto bits = unpack64(k);
      in.insert(in.end(), bits.begin(), bits.end());
    }
    EXPECT_EQ(pack64(sim.eval_single(in)), kat.ciphertext);
  }
}

TEST(DesCircuit, RejectsBadRounds) {
  EXPECT_THROW((void)circuits::make_des(0), std::invalid_argument);
  EXPECT_THROW((void)circuits::make_des(17), std::invalid_argument);
  EXPECT_THROW((void)circuits::ref_des(1, 2, false, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// MD5. Digest KATs match openssl md5.
// ---------------------------------------------------------------------------

std::string hex_digest(const std::array<std::uint8_t, 16>& digest) {
  std::string out;
  for (const auto byte : digest) {
    char buf[3];
    snprintf(buf, sizeof buf, "%02x", byte);
    out += buf;
  }
  return out;
}

TEST(Md5Reference, KnownDigests) {
  const auto digest_of = [](const std::string& s) {
    return hex_digest(circuits::ref_md5_digest(
        std::vector<std::uint8_t>(s.begin(), s.end())));
  };
  EXPECT_EQ(digest_of(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(digest_of("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(digest_of("The quick brown fox jumps over the lazy dog"),
            "9e107d9d372bb6826bd81d3542a419d6");
  EXPECT_EQ(digest_of("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(Md5Reference, RejectsMultiBlockMessages) {
  EXPECT_THROW((void)circuits::ref_md5_digest(std::vector<std::uint8_t>(56)),
               std::invalid_argument);
}

TEST(Md5Circuit, CompressesBlockLikeReference) {
  const auto nl = circuits::make_md5();
  EXPECT_GT(nl.gate_count(), 20000u);
  sim::Simulator sim(nl);
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    std::array<std::uint32_t, 16> m{};
    std::vector<bool> in;
    for (auto& word : m) {
      word = static_cast<std::uint32_t>(rng());
      for (int b = 0; b < 32; ++b) in.push_back(((word >> b) & 1U) != 0);
    }
    const auto out = sim.eval_single(in);
    const auto want = circuits::ref_md5_block(m);
    for (std::size_t r = 0; r < 4; ++r) {
      std::uint32_t got = 0;
      for (std::size_t b = 0; b < 32; ++b) {
        got |= static_cast<std::uint32_t>(out[32 * r + b]) << b;
      }
      EXPECT_EQ(got, want[r]) << "register " << r;
    }
  }
}

TEST(Md5Circuit, ReducedStepsMatchReference) {
  const auto nl = circuits::make_md5(8);
  sim::Simulator sim(nl);
  std::array<std::uint32_t, 16> m{};
  std::vector<bool> in;
  util::Xoshiro256 rng(3);
  for (auto& word : m) {
    word = static_cast<std::uint32_t>(rng());
    for (int b = 0; b < 32; ++b) in.push_back(((word >> b) & 1U) != 0);
  }
  const auto out = sim.eval_single(in);
  const auto want = circuits::ref_md5_block(m, 8);
  std::uint32_t got = 0;
  for (std::size_t b = 0; b < 32; ++b) {
    got |= static_cast<std::uint32_t>(out[b]) << b;
  }
  EXPECT_EQ(got, want[0]);
}

// ---------------------------------------------------------------------------
// AES S-box layer.
// ---------------------------------------------------------------------------

TEST(AesSbox, TablePinnedToPublishedValues) {
  const auto& table = circuits::aes_sbox_table();
  EXPECT_EQ(table[0x00], 0x63);
  EXPECT_EQ(table[0x01], 0x7c);
  EXPECT_EQ(table[0x53], 0xed);
  EXPECT_EQ(table[0xff], 0x16);
  // Bijectivity.
  std::array<bool, 256> seen{};
  for (const auto v : table) seen[v] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(AesSbox, CircuitMatchesReferenceExhaustiveByte) {
  const auto nl = circuits::make_aes_sbox_layer(1);
  sim::Simulator sim(nl);
  for (unsigned data = 0; data < 256; data += 7) {
    for (unsigned key : {0u, 0x5au, 0xffu}) {
      std::vector<bool> in;
      for (int b = 0; b < 8; ++b) in.push_back(((data >> b) & 1U) != 0);
      for (int b = 0; b < 8; ++b) in.push_back(((key >> b) & 1U) != 0);
      const auto out = sim.eval_single(in);
      unsigned got = 0;
      for (int b = 0; b < 8; ++b) got |= static_cast<unsigned>(out[b]) << b;
      EXPECT_EQ(got, circuits::ref_aes_sbox(static_cast<std::uint8_t>(data),
                                            static_cast<std::uint8_t>(key)));
    }
  }
}

TEST(AesSbox, MultipleLanesIndependent) {
  const auto nl = circuits::make_aes_sbox_layer(2);
  EXPECT_EQ(nl.primary_inputs().size(), 32u);
  EXPECT_EQ(nl.primary_outputs().size(), 16u);
  sim::Simulator sim(nl);
  std::vector<bool> in(32, false);
  // lane 0: data 0x12 key 0x34; lane 1: data 0xab key 0xcd.
  for (int b = 0; b < 8; ++b) in[b] = ((0x12 >> b) & 1) != 0;
  for (int b = 0; b < 8; ++b) in[8 + b] = ((0xab >> b) & 1) != 0;
  for (int b = 0; b < 8; ++b) in[16 + b] = ((0x34 >> b) & 1) != 0;
  for (int b = 0; b < 8; ++b) in[24 + b] = ((0xcd >> b) & 1) != 0;
  const auto out = sim.eval_single(in);
  unsigned lane0 = 0, lane1 = 0;
  for (int b = 0; b < 8; ++b) lane0 |= static_cast<unsigned>(out[b]) << b;
  for (int b = 0; b < 8; ++b) lane1 |= static_cast<unsigned>(out[8 + b]) << b;
  EXPECT_EQ(lane0, circuits::ref_aes_sbox(0x12, 0x34));
  EXPECT_EQ(lane1, circuits::ref_aes_sbox(0xab, 0xcd));
}

}  // namespace
