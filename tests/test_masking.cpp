#include <gtest/gtest.h>

#include <cmath>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/random_logic.hpp"
#include "masking/masking.hpp"
#include "sim/simulator.hpp"
#include "tvla/tvla.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;
using masking::Scheme;
using netlist::CellType;
using netlist::GateId;
using netlist::NetId;

/// Functional equivalence under fresh masking randomness: the masked design
/// must compute the original function for every input and every mask draw.
void expect_equivalent(const netlist::Netlist& original,
                       const netlist::Netlist& masked, int trials,
                       std::uint64_t seed) {
  sim::Simulator sim_orig(original, 1);
  util::Xoshiro256 rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<bool> in(original.primary_inputs().size());
    for (auto&& bit : in) bit = (rng() & 1) != 0;
    const auto want = sim_orig.eval_single(in);
    // New simulator per trial: different rand-cell seeds = different masks.
    sim::Simulator sim_masked(masked, rng());
    EXPECT_EQ(sim_masked.eval_single(in), want) << "trial " << t;
  }
}

class MaskedGateEquivalence
    : public ::testing::TestWithParam<std::tuple<CellType, Scheme>> {};

TEST_P(MaskedGateEquivalence, ExhaustiveTwoInput) {
  const auto [type, scheme] = GetParam();
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_cell(type, {a, b});
  nl.mark_output(y);
  const GateId target = nl.net(y).driver;
  const auto result = masking::apply_masking(nl, std::array{target}, scheme);
  EXPECT_EQ(result.masked_gates, 1u);
  EXPECT_GT(result.added_rand_bits, 0u);
  result.design.validate();
  // All 4 input combinations, many random mask draws each.
  sim::Simulator sim_orig(nl);
  for (int combo = 0; combo < 4; ++combo) {
    const std::vector<bool> in{(combo & 1) != 0, (combo & 2) != 0};
    const auto want = sim_orig.eval_single(in);
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      sim::Simulator sim_masked(result.design, seed);
      EXPECT_EQ(sim_masked.eval_single(in), want)
          << netlist::to_string(type) << " combo " << combo << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMaskableTypesBothSchemes, MaskedGateEquivalence,
    ::testing::Combine(::testing::Values(CellType::kAnd, CellType::kOr,
                                         CellType::kNand, CellType::kNor,
                                         CellType::kXor, CellType::kXnor),
                       ::testing::Values(Scheme::kTrichina, Scheme::kDom)));

TEST(Masking, NaryGateEquivalence) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId c = nl.add_input("c");
  nl.mark_output(nl.add_cell(CellType::kAnd, {a, b, c}));
  nl.mark_output(nl.add_cell(CellType::kXnor, {a, b, c}));
  nl.mark_output(nl.add_cell(CellType::kNor, {a, b, c}));
  std::vector<GateId> targets;
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (netlist::is_maskable(nl.gate(g).type)) targets.push_back(g);
  }
  const auto result = masking::apply_masking(nl, targets, Scheme::kTrichina);
  EXPECT_EQ(result.masked_gates, 3u);
  expect_equivalent(nl, result.design, 40, 99);
}

TEST(Masking, WholeDesignEquivalenceMultiplier) {
  const auto nl = circuits::make_multiplier(6);
  std::vector<GateId> targets;
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (netlist::is_maskable(nl.gate(g).type)) targets.push_back(g);
  }
  const auto result = masking::apply_masking(nl, targets, Scheme::kTrichina);
  expect_equivalent(nl, result.design, 25, 7);
}

TEST(Masking, WholeDesignEquivalenceRandomLogic) {
  circuits::RandomLogicConfig config;
  config.gates = 200;
  config.seed = 21;
  const auto nl = circuits::make_random_logic(config);
  // Mask a random half of the maskable gates.
  std::vector<GateId> targets;
  util::Xoshiro256 rng(4);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (netlist::is_maskable(nl.gate(g).type) && rng.chance(0.5)) {
      targets.push_back(g);
    }
  }
  for (const Scheme scheme : {Scheme::kTrichina, Scheme::kDom}) {
    const auto result = masking::apply_masking(nl, targets, scheme);
    expect_equivalent(nl, result.design, 20, 17);
  }
}

TEST(Masking, GroupsAlignWithOriginalGates) {
  const auto nl = circuits::make_adder(6);
  std::vector<GateId> targets;
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (netlist::is_maskable(nl.gate(g).type)) targets.push_back(g);
  }
  ASSERT_FALSE(targets.empty());
  const auto result = masking::apply_masking(nl, targets, Scheme::kTrichina);
  // Every cell in the rewrite refers back to an original gate id.
  for (GateId g = 0; g < result.design.gate_count(); ++g) {
    EXPECT_LT(result.design.gate(g).group, nl.gate_count());
  }
  // Masked composites have > 1 member; unmasked gates exactly 1.
  std::vector<std::size_t> members(nl.gate_count(), 0);
  for (GateId g = 0; g < result.design.gate_count(); ++g) {
    members[result.design.gate(g).group]++;
  }
  for (const GateId target : targets) EXPECT_GT(members[target], 1u);
}

TEST(Masking, SkipsInvalidTargets) {
  const auto nl = circuits::make_adder(4);
  // Find a non-maskable gate (an input cell) and an out-of-range id.
  std::vector<GateId> targets{0 /* input cell */,
                              static_cast<GateId>(nl.gate_count() + 5)};
  // Duplicate maskable target counts once.
  GateId maskable = netlist::kNoGate;
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (netlist::is_maskable(nl.gate(g).type)) {
      maskable = g;
      break;
    }
  }
  targets.push_back(maskable);
  targets.push_back(maskable);
  const auto result = masking::apply_masking(nl, targets, Scheme::kTrichina);
  EXPECT_EQ(result.masked_gates, 1u);
  EXPECT_EQ(result.skipped, 3u);
}

TEST(Masking, CompositeCellCountMatchesEmission) {
  for (const CellType type :
       {CellType::kAnd, CellType::kOr, CellType::kNand, CellType::kNor,
        CellType::kXor, CellType::kXnor}) {
    netlist::Netlist nl;
    const NetId a = nl.add_input("a");
    const NetId b = nl.add_input("b");
    const NetId y = nl.add_cell(type, {a, b});
    nl.mark_output(y);
    const GateId target = nl.net(y).driver;
    const auto result =
        masking::apply_masking(nl, std::array{target}, Scheme::kTrichina);
    // Emitted = composite cells (+1 for the replaced original) plus the
    // primary-output demask XOR at the masked boundary.
    const std::size_t emitted = result.design.gate_count() - nl.gate_count() + 1;
    EXPECT_EQ(emitted,
              masking::composite_cell_count(type, 2, Scheme::kTrichina) + 1)
        << netlist::to_string(type);
  }
  EXPECT_EQ(masking::composite_cell_count(CellType::kNot, 1, Scheme::kTrichina),
            0u);
}

TEST(Masking, ReducesPerGateLeakage) {
  // The core security property: masking the leakiest gates of an S-box
  // slashes their group t-statistics.
  const auto nl = circuits::make_aes_sbox_layer(1);
  tvla::TvlaConfig config;
  config.traces = 8192;
  config.noise_std_fj = 1.0;
  const auto lib = techlib::TechLibrary::default_library();
  const auto before = tvla::run_fixed_vs_random(nl, lib, config);
  const auto leaky = before.leaky_groups();
  ASSERT_GT(leaky.size(), 5u);

  std::vector<GateId> targets;
  for (const GateId g : leaky) {
    if (netlist::is_maskable(nl.gate(g).type)) targets.push_back(g);
  }
  const auto result = masking::apply_masking(nl, targets, Scheme::kTrichina);
  const auto after = tvla::run_fixed_vs_random(result.design, lib, config);

  double before_sum = 0.0, after_sum = 0.0;
  for (const GateId g : targets) {
    before_sum += std::fabs(before.t_value(g));
    after_sum += std::fabs(after.t_value(g));
  }
  EXPECT_LT(after_sum, 0.5 * before_sum);
}

}  // namespace
