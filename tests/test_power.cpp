#include <gtest/gtest.h>

#include "circuits/arith.hpp"
#include "power/power_model.hpp"

namespace {

using namespace polaris;
using netlist::CellType;
using netlist::NetId;

TEST(PowerModel, EnergyIncludesLoadTerm) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_cell(CellType::kNot, {a});  // fanout 2 below
  nl.mark_output(nl.add_cell(CellType::kBuf, {x}));
  nl.mark_output(nl.add_cell(CellType::kBuf, {x}));
  const auto lib = techlib::TechLibrary::default_library();
  const power::PowerModel pm(nl, lib);
  const netlist::GateId not_gate = nl.net(x).driver;
  EXPECT_NEAR(pm.gate_energy(not_gate),
              lib.switch_energy(CellType::kNot, 1) +
                  2 * power::kLoadEnergyPerFanoutFj,
              1e-12);
}

TEST(PowerModel, InputsHaveZeroEnergy) {
  const auto nl = circuits::make_adder(4);
  const auto lib = techlib::TechLibrary::default_library();
  const power::PowerModel pm(nl, lib);
  for (const NetId in : nl.primary_inputs()) {
    // PI driver energy is the load term only times zero switching... the
    // cell energy is zero; the model still charges fan-out load, which is
    // physically the pad driving the wire. Accept either exactly zero cell
    // energy or load-only.
    const auto driver = nl.net(in).driver;
    EXPECT_LE(pm.gate_energy(driver),
              power::kLoadEnergyPerFanoutFj * nl.net(in).fanouts.size() + 1e-12);
  }
}

TEST(PowerModel, TotalPowerSumsToggledGates) {
  netlist::Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_cell(CellType::kNot, {a});
  nl.mark_output(y);
  const auto lib = techlib::TechLibrary::default_library();
  const power::PowerModel pm(nl, lib);
  sim::Simulator sim(nl);
  sim.set_input(0, 0);
  sim.eval();
  sim.set_input(0, 0x1);  // only lane 0 flips
  sim.eval();
  std::vector<double> lanes;
  pm.total_power(sim, lanes);
  ASSERT_EQ(lanes.size(), sim::kLanes);
  EXPECT_GT(lanes[0], 0.0);
  for (std::size_t l = 1; l < lanes.size(); ++l) EXPECT_EQ(lanes[l], 0.0);
}

TEST(PowerModel, StaticLeakagePositive) {
  const auto nl = circuits::make_multiplier(6);
  const auto lib = techlib::TechLibrary::default_library();
  const power::PowerModel pm(nl, lib);
  EXPECT_GT(pm.static_leakage(), 0.0);
}

}  // namespace
