// obs metrics time-series: ring semantics, exact interval deltas via
// snapshot subtraction, the background sampler (including its metrics
// file), and the PR contract that sampling never perturbs results.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "circuits/arith.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"

namespace {

using namespace polaris;

TEST(TimeSeries, RingWrapEvictsOldestKeepsNewest) {
  obs::TimeSeries series(3);
  EXPECT_EQ(series.capacity(), 3u);
  EXPECT_TRUE(series.recent(5).empty());

  for (std::int64_t i = 0; i < 5; ++i) {
    obs::TimePoint point;
    point.wall_ms = i;
    point.mono_ns = i * 1000;
    series.push(point);
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.total_pushed(), 5u);

  // Oldest-first over the surviving window {2, 3, 4}.
  const auto all = series.recent(10);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].wall_ms, 2);
  EXPECT_EQ(all[1].wall_ms, 3);
  EXPECT_EQ(all[2].wall_ms, 4);

  // recent(2) is exactly the (earlier, later) pair subtraction wants.
  const auto pair = series.recent(2);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0].wall_ms, 3);
  EXPECT_EQ(pair[1].wall_ms, 4);
}

TEST(TimeSeries, ZeroCapacityClampsToOne) {
  obs::TimeSeries series(0);
  EXPECT_EQ(series.capacity(), 1u);
  obs::TimePoint point;
  point.wall_ms = 7;
  series.push(point);
  point.wall_ms = 8;
  series.push(point);
  const auto window = series.recent(4);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].wall_ms, 8);
}

TEST(TimeSeries, ConsecutiveSampleSubtractionIsExactIntervalDelta) {
  // The rate math `client top` and the metrics file rely on: subtracting
  // consecutive ring snapshots yields EXACTLY the records of the interval,
  // identical to a registry that only ever saw those records.
  obs::Registry registry;
  auto& requests = registry.counter("req");
  auto& latency = registry.histogram("lat_us");
  requests.add(5);
  latency.record(10);

  obs::TimeSeries series(4);
  series.push({1000, 1'000'000, registry.snapshot()});
  requests.add(7);
  latency.record(10);
  latency.record(500);
  series.push({2000, 2'000'000, registry.snapshot()});

  const auto window = series.recent(2);
  ASSERT_EQ(window.size(), 2u);
  obs::Snapshot delta = window[1].snapshot;
  delta.subtract(window[0].snapshot);

  EXPECT_EQ(delta.counter_value("req"), 7u);
  const auto* hist = delta.find_histogram("lat_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  EXPECT_EQ(hist->sum, 510u);

  // Hand-computed reference: a registry that recorded ONLY the second
  // interval's samples produces the identical sparse bucket layout.
  obs::Registry interval_only;
  interval_only.counter("req").add(7);
  interval_only.histogram("lat_us").record(10);
  interval_only.histogram("lat_us").record(500);
  const auto expected = interval_only.snapshot();
  EXPECT_EQ(hist->buckets, expected.histograms[0].buckets);
  EXPECT_EQ(delta.counters[0].value, expected.counters[0].value);
}

TEST(TimeSeriesSampler, CollectsSamplesAndAppendsJsonDeltaLines) {
  obs::Registry registry;
  registry.counter("work.items").add(3);
  const std::string path =
      ::testing::TempDir() + "polaris_metrics_test.jsonl";
  std::remove(path.c_str());
  {
    obs::Sampler::Options options;
    options.interval_ms = 5;
    options.capacity = 8;
    options.metrics_file = path;
    obs::Sampler sampler(registry, options);
    EXPECT_EQ(sampler.interval_ms(), 5u);
    sampler.start();
    sampler.start();  // idempotent
    for (int i = 0; i < 1000 && sampler.series().total_pushed() < 3; ++i) {
      registry.counter("work.items").add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    sampler.stop();
    sampler.stop();  // idempotent
    EXPECT_GE(sampler.series().total_pushed(), 3u);
    EXPECT_GE(sampler.series().size(), 3u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"interval_ms\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"counters\""), std::string::npos) << line;
  }
  EXPECT_GE(lines, 3u);
  std::remove(path.c_str());
}

TEST(TimeSeriesSampler, EmptyRegistrySamplesCleanly) {
  obs::Registry registry;  // no metrics at all
  obs::Sampler::Options options;
  options.interval_ms = 5;
  options.capacity = 4;
  obs::Sampler sampler(registry, options);
  sampler.start();
  for (int i = 0; i < 1000 && sampler.series().total_pushed() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  const auto window = sampler.series().recent(2);
  ASSERT_GE(window.size(), 2u);
  EXPECT_TRUE(window[0].snapshot.counters.empty());
  EXPECT_TRUE(window[0].snapshot.histograms.empty());
  // Subtracting empty snapshots is a no-op, not a crash.
  obs::Snapshot delta = window[1].snapshot;
  delta.subtract(window[0].snapshot);
  EXPECT_TRUE(delta.counters.empty());
}

TEST(TimeSeriesSampler, StopBeforeStartAndDestructorAreSafe) {
  obs::Registry registry;
  obs::Sampler sampler(registry, {});
  sampler.stop();  // never started: no-op
  sampler.start();
  // Destructor stops the thread; leaving scope must not hang or crash.
}

TEST(TimeSeriesSampler, SamplingLeavesTvlaResultsBitIdentical) {
  // The PR contract: the sampler only READS the registry, so audits run
  // with aggressive sampling are bit-identical to unsampled ones at every
  // thread count.
  const auto lib = techlib::TechLibrary::default_library();
  const auto design = circuits::make_multiplier(4);
  tvla::TvlaConfig config;
  config.traces = 256;
  config.seed = 11;
  config.threads = 1;
  const auto baseline = tvla::run_fixed_vs_random(design, lib, config);

  obs::Sampler::Options options;
  options.interval_ms = 1;  // pathological: sample as fast as possible
  options.capacity = 16;
  obs::Sampler sampler(obs::Registry::global(), options);
  sampler.start();
  for (const std::size_t threads : {1u, 2u, 8u}) {
    tvla::TvlaConfig sampled = config;
    sampled.threads = threads;
    const auto report = tvla::run_fixed_vs_random(design, lib, sampled);
    ASSERT_EQ(report.t_values().size(), baseline.t_values().size());
    EXPECT_EQ(report.t_values(), baseline.t_values()) << threads << " threads";
    EXPECT_EQ(report.leaky_count(), baseline.leaky_count());
  }
  // The audits above may finish inside the first sample interval; wait for
  // the sampler to demonstrably run before asserting it did.
  for (int i = 0; i < 1000 && sampler.series().total_pushed() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  EXPECT_GE(sampler.series().total_pushed(), 1u);
}

}  // namespace
