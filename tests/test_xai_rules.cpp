#include <gtest/gtest.h>

#include "ml/adaboost.hpp"
#include "util/rng.hpp"
#include "xai/rules.hpp"
#include "xai/waterfall.hpp"

namespace {

using namespace polaris;

/// Dataset where label = f0 AND NOT f1 (plus distractors): rule mining
/// should recover literals f0 and !f1.
ml::Dataset planted_rule_data(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  ml::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double f0 = rng.chance(0.5) ? 1.0 : 0.0;
    const double f1 = rng.chance(0.5) ? 1.0 : 0.0;
    const double f2 = rng.chance(0.5) ? 1.0 : 0.0;
    const double f3 = rng.chance(0.5) ? 1.0 : 0.0;
    data.add({f0, f1, f2, f3}, (f0 == 1.0 && f1 == 0.0) ? 1 : 0);
  }
  return data;
}

TEST(Rules, LiteralAndRuleMatching) {
  const xai::Literal positive{0, true};
  const xai::Literal negative{1, false};
  const std::vector<double> x{1.0, 0.0};
  EXPECT_TRUE(positive.matches(x));
  EXPECT_TRUE(negative.matches(x));
  xai::Rule rule;
  rule.literals = {positive, negative};
  EXPECT_TRUE(rule.matches(x));
  const std::vector<double> y{1.0, 1.0};
  EXPECT_FALSE(rule.matches(y));
}

TEST(Rules, ExtractionRecoversPlantedRule) {
  const auto data = planted_rule_data(800, 3);
  ml::AdaBoost model({.rounds = 40, .max_depth = 2});
  model.fit(data);

  const auto rules = xai::extract_rules(model, data);
  ASSERT_FALSE(rules.empty());
  // The top mask rule must involve f0 positive and f1 negative.
  bool found = false;
  for (const auto& rule : rules.rules()) {
    if (rule.action != 1) continue;
    bool has_f0 = false, has_not_f1 = false;
    for (const auto& lit : rule.literals) {
      if (lit.feature == 0 && lit.positive) has_f0 = true;
      if (lit.feature == 1 && !lit.positive) has_not_f1 = true;
    }
    if (has_f0 && has_not_f1 && rule.precision > 0.85) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Rules, StandaloneScoringFollowsRules) {
  const auto data = planted_rule_data(800, 4);
  ml::AdaBoost model({.rounds = 40, .max_depth = 2});
  model.fit(data);
  const auto rules = xai::extract_rules(model, data);
  ASSERT_FALSE(rules.empty());
  // "Rules used independently" (Sec. IV-B): classify by rules alone.
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double s = rules.score(data.row(i));
    if (s == 0.5) continue;  // no rule fired
    ++total;
    correct += ((s >= 0.5 ? 1 : 0) == data.label(i)) ? 1 : 0;
  }
  ASSERT_GT(total, data.size() / 4);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.8);
}

TEST(Rules, CombinedScoreBlendsModelAndRules) {
  const auto data = planted_rule_data(500, 5);
  ml::AdaBoost model({.rounds = 30, .max_depth = 2});
  model.fit(data);
  const auto rules = xai::extract_rules(model, data);
  const auto x = data.row(0);
  const double combined = rules.combined_score(model, x, 0.7);
  const double model_only = model.predict_proba(x);
  const double rules_only = rules.score(x, model_only);
  EXPECT_NEAR(combined, 0.7 * model_only + 0.3 * rules_only, 1e-12);
  // Empty rule set degrades to the model.
  const xai::RuleSet empty;
  EXPECT_DOUBLE_EQ(empty.combined_score(model, x, 0.7), model_only);
  EXPECT_DOUBLE_EQ(empty.score(x, 0.42), 0.42);
}

TEST(Rules, ToStringUsesFeatureNames) {
  xai::Rule rule;
  rule.literals = {{0, true}, {1, false}};
  rule.action = 1;
  rule.support = 12;
  rule.precision = 0.9;
  const std::vector<std::string> names{"G4=nand", "adj(G4,G5)"};
  const std::string text = rule.to_string(names);
  EXPECT_NE(text.find("G4=nand"), std::string::npos);
  EXPECT_NE(text.find("!adj(G4,G5)"), std::string::npos);
  EXPECT_NE(text.find("masking gate"), std::string::npos);
  rule.action = 0;
  EXPECT_NE(rule.to_string(names).find("Do not Mask"), std::string::npos);
}

TEST(Rules, ConfigLimitsRuleCount) {
  const auto data = planted_rule_data(800, 6);
  ml::AdaBoost model({.rounds = 40, .max_depth = 2});
  model.fit(data);
  xai::RuleExtractionConfig config;
  config.max_rules = 2;
  const auto rules = xai::extract_rules(model, data, config);
  EXPECT_LE(rules.rules().size(), 2u);
}

TEST(Waterfall, DecomposesPrediction) {
  const auto data = planted_rule_data(400, 7);
  ml::AdaBoost model({.rounds = 25, .max_depth = 2});
  model.fit(data);
  const std::vector<std::string> names{"f0", "f1", "f2", "f3"};
  const auto wf = xai::make_waterfall(model, data.row(0), names, 3);
  // f(x) = E[f] + sum(bars) + rest.
  double total = wf.expected_value + wf.rest;
  for (const auto& bar : wf.bars) total += bar.phi;
  EXPECT_NEAR(total, wf.fx, 1e-6);
  EXPECT_LE(wf.bars.size(), 3u);
  // Bars are sorted by |phi| descending.
  for (std::size_t i = 1; i < wf.bars.size(); ++i) {
    EXPECT_GE(std::fabs(wf.bars[i - 1].phi), std::fabs(wf.bars[i].phi));
  }
  const std::string text = wf.render();
  EXPECT_NE(text.find("E[f(x)]"), std::string::npos);
  EXPECT_NE(text.find("f0"), std::string::npos);
}

}  // namespace
