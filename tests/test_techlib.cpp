#include <gtest/gtest.h>

#include "circuits/arith.hpp"
#include "techlib/techlib.hpp"

namespace {

using namespace polaris;
using netlist::CellType;

TEST(TechLibrary, RelativeCostOrdering) {
  const auto lib = techlib::TechLibrary::default_library();
  // NAND is the cheapest 2-input function; XOR costs more; DFF most.
  EXPECT_LT(lib.area(CellType::kNand, 2), lib.area(CellType::kAnd, 2));
  EXPECT_LT(lib.area(CellType::kAnd, 2), lib.area(CellType::kXor, 2));
  EXPECT_LT(lib.area(CellType::kXor, 2), lib.area(CellType::kDff, 1));
  EXPECT_GT(lib.switch_energy(CellType::kXor, 2),
            lib.switch_energy(CellType::kNand, 2));
}

TEST(TechLibrary, InputsAreFree) {
  const auto lib = techlib::TechLibrary::default_library();
  EXPECT_EQ(lib.area(CellType::kInput, 0), 0.0);
  EXPECT_EQ(lib.switch_energy(CellType::kInput, 0), 0.0);
}

TEST(TechLibrary, FanInScaling) {
  const auto lib = techlib::TechLibrary::default_library();
  // n-ary cells cost like their 2-input tree decomposition.
  EXPECT_DOUBLE_EQ(lib.area(CellType::kAnd, 4), 3 * lib.area(CellType::kAnd, 2));
  EXPECT_DOUBLE_EQ(lib.leakage(CellType::kOr, 6), 5 * lib.leakage(CellType::kOr, 2));
  EXPECT_GT(lib.switch_energy(CellType::kAnd, 6),
            lib.switch_energy(CellType::kAnd, 2));
  // Delay grows with tree depth, not linearly with fan-in.
  const double d2 = lib.delay(CellType::kAnd, 2, 1);
  const double d8 = lib.delay(CellType::kAnd, 8, 1);
  EXPECT_GT(d8, d2);
  EXPECT_LT(d8, 7 * d2);
}

TEST(TechLibrary, DelayGrowsWithFanout) {
  const auto lib = techlib::TechLibrary::default_library();
  EXPECT_GT(lib.delay(CellType::kNand, 2, 8), lib.delay(CellType::kNand, 2, 1));
}

TEST(TechLibrary, GateOverloadsUseNetlist) {
  const auto lib = techlib::TechLibrary::default_library();
  const auto nl = circuits::make_adder(4);
  double total = 0.0;
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    total += lib.area(nl, g);
  }
  EXPECT_GT(total, 0.0);
}

TEST(TechLibrary, SetBaseCostOverrides) {
  auto lib = techlib::TechLibrary::default_library();
  techlib::CellCost cost{10.0, 5.0, 1.0, 100.0, 1.0};
  lib.set_base_cost(CellType::kNand, cost);
  EXPECT_DOUBLE_EQ(lib.area(CellType::kNand, 2), 10.0);
  EXPECT_DOUBLE_EQ(lib.base_cost(CellType::kNand).switch_energy_fj, 5.0);
}

TEST(TechLibrary, RandCellHasEnergyCost) {
  // Mask-share sources must not be free, or masked designs would get their
  // randomness at zero power cost.
  const auto lib = techlib::TechLibrary::default_library();
  EXPECT_GT(lib.switch_energy(CellType::kRand, 0), 0.0);
  EXPECT_GT(lib.area(CellType::kRand, 0), 0.0);
}

}  // namespace
