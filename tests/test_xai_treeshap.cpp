#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <numeric>

#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/gbdt.hpp"
#include "xai/treeshap.hpp"
#include "util/rng.hpp"

namespace {

using namespace polaris;
using ml::Dataset;
using ml::Tree;
using ml::TreeEnsemble;
using ml::TreeNode;

/// Brute-force Shapley values by enumerating all feature subsets, with the
/// cover-conditional expectation semantics TreeSHAP uses. Exponential: only
/// for tiny feature counts.
double tree_value_with_subset(const Tree& tree, std::size_t node,
                              std::span<const double> x,
                              const std::vector<bool>& present) {
  const TreeNode& n = tree.nodes[node];
  if (n.is_leaf()) return n.value;
  const auto f = static_cast<std::size_t>(n.feature);
  const auto left = static_cast<std::size_t>(n.left);
  const auto right = static_cast<std::size_t>(n.right);
  if (present[f]) {
    return tree_value_with_subset(tree, x[f] <= n.threshold ? left : right, x,
                                  present);
  }
  const double wl = tree.nodes[left].cover / n.cover;
  const double wr = tree.nodes[right].cover / n.cover;
  return wl * tree_value_with_subset(tree, left, x, present) +
         wr * tree_value_with_subset(tree, right, x, present);
}

std::vector<double> brute_force_shap(const Tree& tree, std::span<const double> x,
                                     std::size_t m) {
  std::vector<double> phi(m, 0.0);
  std::vector<double> factorial(m + 1, 1.0);
  for (std::size_t i = 1; i <= m; ++i) {
    factorial[i] = factorial[i - 1] * static_cast<double>(i);
  }
  for (std::size_t f = 0; f < m; ++f) {
    for (std::uint64_t subset = 0; subset < (1ULL << m); ++subset) {
      if ((subset >> f) & 1ULL) continue;  // f must be absent from S
      std::vector<bool> without(m, false);
      std::size_t size = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if ((subset >> i) & 1ULL) {
          without[i] = true;
          ++size;
        }
      }
      std::vector<bool> with = without;
      with[f] = true;
      const double weight = factorial[size] * factorial[m - size - 1] /
                            factorial[m];
      phi[f] += weight * (tree_value_with_subset(tree, 0, x, with) -
                          tree_value_with_subset(tree, 0, x, without));
    }
  }
  return phi;
}

/// Random tree over `m` binary-ish features with covers that mimic training
/// data flow.
Tree random_tree(std::size_t m, std::size_t depth, util::Xoshiro256& rng) {
  Tree tree;
  struct Frame {
    std::size_t depth;
    double cover;
  };
  // Build recursively.
  const std::function<std::int32_t(std::size_t, double)> grow =
      [&](std::size_t d, double cover) -> std::int32_t {
    const auto id = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.emplace_back();
    tree.nodes[static_cast<std::size_t>(id)].cover = cover;
    if (d == 0 || rng.chance(0.25)) {
      tree.nodes[static_cast<std::size_t>(id)].value = rng.uniform(-1.0, 1.0);
      return id;
    }
    const double frac = rng.uniform(0.2, 0.8);
    const auto feature = static_cast<std::int32_t>(rng.bounded(m));
    const double threshold = rng.uniform(0.2, 0.8);
    const auto left = grow(d - 1, cover * frac);
    const auto right = grow(d - 1, cover * (1.0 - frac));
    auto& node = tree.nodes[static_cast<std::size_t>(id)];
    node.feature = feature;
    node.threshold = threshold;
    node.left = left;
    node.right = right;
    return id;
  };
  (void)grow(depth, 64.0);
  return tree;
}

TEST(TreeShap, MatchesBruteForceOnRandomTrees) {
  util::Xoshiro256 rng(101);
  const std::size_t m = 5;
  for (int trial = 0; trial < 30; ++trial) {
    const Tree tree = random_tree(m, 4, rng);
    std::vector<double> x(m);
    for (auto& v : x) v = rng.uniform();
    const auto fast = xai::tree_shap(tree, x, m);
    const auto slow = brute_force_shap(tree, x, m);
    for (std::size_t f = 0; f < m; ++f) {
      EXPECT_NEAR(fast[f], slow[f], 1e-9) << "trial " << trial << " f " << f;
    }
  }
}

TEST(TreeShap, LocalAccuracySingleTree) {
  // sum(phi) + E[tree] == tree(x), property-tested.
  util::Xoshiro256 rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    const Tree tree = random_tree(6, 5, rng);
    std::vector<double> x(6);
    for (auto& v : x) v = rng.uniform();
    TreeEnsemble single;
    single.trees.push_back({tree, 1.0});
    const auto phi = xai::tree_shap(single, x);
    const double sum = std::accumulate(phi.begin(), phi.end(), 0.0);
    EXPECT_NEAR(sum + xai::expected_value(single), single.margin(x), 1e-8);
  }
}

TEST(TreeShap, DummyFeatureGetsZero) {
  // A tree that never splits on feature 2 must give phi[2] == 0.
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Tree tree = random_tree(2, 4, rng);  // splits only on features 0,1
    std::vector<double> x{0.3, 0.7, 0.9};
    const auto phi = xai::tree_shap(tree, x, 3);
    EXPECT_EQ(phi[2], 0.0);
  }
}

TEST(TreeShap, SymmetryAxiom) {
  // Two features used in perfectly symmetric positions with equal covers
  // receive equal credit for a symmetric input.
  Tree tree;
  tree.nodes.resize(7);
  // root splits f0 at 0.5; children split f1 at 0.5; leaves: AND-like.
  tree.nodes[0] = {0, 0.5, 1, 2, 0.0, 8.0};
  tree.nodes[1] = {1, 0.5, 3, 4, 0.0, 4.0};
  tree.nodes[2] = {1, 0.5, 5, 6, 0.0, 4.0};
  tree.nodes[3] = {-1, 0, -1, -1, 0.0, 2.0};
  tree.nodes[4] = {-1, 0, -1, -1, 0.0, 2.0};
  tree.nodes[5] = {-1, 0, -1, -1, 0.0, 2.0};
  tree.nodes[6] = {-1, 0, -1, -1, 1.0, 2.0};
  const std::vector<double> x{1.0, 1.0};
  const auto phi = xai::tree_shap(tree, x, 2);
  EXPECT_NEAR(phi[0], phi[1], 1e-12);
  EXPECT_NEAR(phi[0] + phi[1] + 0.25, 1.0, 1e-12);  // E[f]=0.25, f(x)=1
}

TEST(TreeShap, LocalAccuracyForAllModelKinds) {
  // Fit each real model on data and verify sum(phi) + E[f] = margin(x).
  util::Xoshiro256 rng(31);
  Dataset data;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.chance(0.5) ? 1.0 : 0.0;
    const double b = rng.chance(0.5) ? 1.0 : 0.0;
    const double c = rng.uniform();
    data.add({a, b, c}, (a != b) ? 1 : 0);
  }
  ml::RandomForest forest({.trees = 12, .max_depth = 4, .seed = 2});
  ml::Gbdt gbdt({.rounds = 25, .max_depth = 3, .learning_rate = 0.2});
  ml::AdaBoost ada({.rounds = 20, .max_depth = 2});
  forest.fit(data);
  gbdt.fit(data);
  ada.fit(data);
  for (const ml::Classifier* model :
       {static_cast<const ml::Classifier*>(&forest),
        static_cast<const ml::Classifier*>(&gbdt),
        static_cast<const ml::Classifier*>(&ada)}) {
    for (std::size_t i = 0; i < 25; ++i) {
      const auto x = data.row(i);
      const auto phi = xai::tree_shap(model->ensemble(), x);
      const double sum = std::accumulate(phi.begin(), phi.end(), 0.0);
      EXPECT_NEAR(sum + xai::expected_value(model->ensemble()),
                  model->predict_margin(x), 1e-6)
          << model->name() << " row " << i;
    }
  }
}

TEST(TreeShap, ExpectedValueMatchesCoverWeightedMean) {
  Tree stump;
  stump.nodes.resize(3);
  stump.nodes[0] = {0, 0.5, 1, 2, 0.0, 10.0};
  stump.nodes[1] = {-1, 0, -1, -1, 1.0, 7.0};
  stump.nodes[2] = {-1, 0, -1, -1, 3.0, 3.0};
  TreeEnsemble ensemble;
  ensemble.base = 0.5;
  ensemble.trees.push_back({stump, 2.0});
  // E = 0.5 + 2*(0.7*1 + 0.3*3) = 0.5 + 3.2.
  EXPECT_NEAR(xai::expected_value(ensemble), 3.7, 1e-12);
}

TEST(TreeShap, ConstantTreeContributesNothing) {
  Tree constant;
  constant.nodes.resize(1);
  constant.nodes[0] = {-1, 0, -1, -1, 2.0, 5.0};
  const std::vector<double> x{0.1, 0.2};
  const auto phi = xai::tree_shap(constant, x, 2);
  EXPECT_EQ(phi[0], 0.0);
  EXPECT_EQ(phi[1], 0.0);
}

TEST(TreeShap, RepeatedFeatureOnPathHandled) {
  // Tree splitting twice on the same feature along one path (the unwind
  // code path).
  Tree tree;
  tree.nodes.resize(5);
  tree.nodes[0] = {0, 0.7, 1, 2, 0.0, 10.0};
  tree.nodes[1] = {0, 0.3, 3, 4, 0.0, 6.0};
  tree.nodes[2] = {-1, 0, -1, -1, 5.0, 4.0};
  tree.nodes[3] = {-1, 0, -1, -1, 1.0, 2.0};
  tree.nodes[4] = {-1, 0, -1, -1, 2.0, 4.0};
  const std::vector<double> x{0.5, 0.0};
  const auto fast = xai::tree_shap(tree, x, 2);
  const auto slow = brute_force_shap(tree, x, 2);
  EXPECT_NEAR(fast[0], slow[0], 1e-10);
  EXPECT_NEAR(fast[1], slow[1], 1e-10);
  EXPECT_EQ(fast[1], 0.0);  // feature 1 never used
}

}  // namespace
