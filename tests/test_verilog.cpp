#include <gtest/gtest.h>

#include "circuits/arith.hpp"
#include "circuits/random_logic.hpp"
#include "netlist/dot.hpp"
#include "netlist/verilog.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace polaris::netlist;

TEST(Verilog, EmitsModuleHeaderAndInstances) {
  Netlist nl("demo");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.mark_output(nl.add_cell(CellType::kNand, {a, b}, "y"));
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module demo"), std::string::npos);
  EXPECT_NE(v.find("input a"), std::string::npos);
  EXPECT_NE(v.find("output y"), std::string::npos);
  EXPECT_NE(v.find("nand"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, ParsesHandWrittenModule) {
  const std::string src = R"(
    // half adder
    module ha (a, b, s, c);
      input a, b;
      output s, c;
      xor g1 (s, a, b);
      and g2 (c, a, b);
    endmodule
  )";
  const Netlist nl = from_verilog(src);
  EXPECT_EQ(nl.name(), "ha");
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  polaris::sim::Simulator sim(nl);
  EXPECT_EQ(sim.eval_single({true, true}), (std::vector<bool>{false, true}));
  EXPECT_EQ(sim.eval_single({true, false}), (std::vector<bool>{true, false}));
}

TEST(Verilog, ParsesAssignConstantsAndAliases) {
  const std::string src = R"(
    module m (a, y0, y1, y2);
      input a; output y0, y1, y2; wire t;
      assign t = 1'b1;
      and g (y0, a, t);
      assign y1 = 1'b0;
      assign y2 = a;
    endmodule
  )";
  const Netlist nl = from_verilog(src);
  polaris::sim::Simulator sim(nl);
  EXPECT_EQ(sim.eval_single({true}), (std::vector<bool>{true, false, true}));
  EXPECT_EQ(sim.eval_single({false}), (std::vector<bool>{false, false, false}));
}

TEST(Verilog, ParsesBlockComments) {
  const std::string src =
      "module m (a, y); /* block\ncomment */ input a; output y;\n"
      "buf g (y, a);\nendmodule";
  EXPECT_NO_THROW((void)from_verilog(src));
}

TEST(Verilog, RejectsMalformedInput) {
  EXPECT_THROW((void)from_verilog("nand g (y, a, b);"), std::runtime_error);
  EXPECT_THROW((void)from_verilog("module m (a); input a; frob g (a);"),
               std::runtime_error);
  EXPECT_THROW((void)from_verilog("module m (y); output y; endmodule"),
               std::runtime_error);  // y undriven
  EXPECT_THROW(
      (void)from_verilog("module m (a, y); input a; output y; not g (y);"),
      std::runtime_error);  // arity
}

TEST(Verilog, RejectsDuplicateDriver) {
  const std::string src = R"(
    module m (a, y);
      input a; output y;
      buf g1 (y, a);
      buf g2 (y, a);
    endmodule
  )";
  EXPECT_THROW((void)from_verilog(src), std::runtime_error);
}

TEST(Verilog, RoundTripPreservesFunction) {
  // multiplier -> verilog -> parse -> same outputs on random vectors.
  const Netlist original = polaris::circuits::make_multiplier(6);
  const Netlist reparsed = from_verilog(to_verilog(original));
  ASSERT_EQ(reparsed.primary_inputs().size(), original.primary_inputs().size());
  ASSERT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
  polaris::sim::Simulator sim_a(original), sim_b(reparsed);
  polaris::util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> in(original.primary_inputs().size());
    for (auto&& bit : in) bit = (rng() & 1) != 0;
    EXPECT_EQ(sim_a.eval_single(in), sim_b.eval_single(in));
  }
}

TEST(Verilog, RoundTripRandomLogic) {
  polaris::circuits::RandomLogicConfig config;
  config.gates = 150;
  config.seed = 5;
  const Netlist original = polaris::circuits::make_random_logic(config);
  const Netlist reparsed = from_verilog(to_verilog(original));
  polaris::sim::Simulator sim_a(original), sim_b(reparsed);
  polaris::util::Xoshiro256 rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> in(original.primary_inputs().size());
    for (auto&& bit : in) bit = (rng() & 1) != 0;
    EXPECT_EQ(sim_a.eval_single(in), sim_b.eval_single(in));
  }
}

TEST(Verilog, FileRoundTrip) {
  const Netlist nl = polaris::circuits::make_adder(4);
  const std::string path = testing::TempDir() + "/polaris_adder4.v";
  write_verilog_file(nl, path);
  const Netlist back = read_verilog_file(path);
  EXPECT_EQ(back.primary_outputs().size(), nl.primary_outputs().size());
  EXPECT_THROW((void)read_verilog_file("/no/such/file.v"), std::runtime_error);
}

TEST(Dot, EmitsGraph) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.mark_output(nl.add_cell(CellType::kNot, {a}));
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
